//! Query planning and scatter-gather execution: the explicit
//! **plan → fetch → extract** pipeline behind every read.
//!
//! The monolithic read path (resolve, fetch, decode, materialize in
//! one pass) is split into three stages, mirroring how the paper's
//! query server "issues queries in parallel to the backend store"
//! (§2.4) while leaving each stage independently testable:
//!
//! 1. **Plan** — [`RStore::plan_query`](crate::store::RStore::plan_query)
//!    consults the two lossy projections *once* to resolve the
//!    query's span, probes the decoded-chunk cache, and groups the
//!    missing backend keys by their owning node (via
//!    `Cluster::owner_of`, the hash-ring placement API). The result
//!    is a [`QueryPlan`]: an inspectable description of exactly what
//!    will be fetched from where.
//! 2. **Fetch** — [`RStore::execute`](crate::store::RStore::execute)
//!    runs the plan's node batches concurrently on the store's shared
//!    fetch pool ([`serve`](crate::serve)): each batch is one pool
//!    job, so fetch threads are bounded by the pool size no matter
//!    how many queries are in flight (the retired per-query
//!    scatter-gather spawn survives as
//!    [`RStore::execute_spawn`](crate::store::RStore::execute_spawn),
//!    the baseline the throughput bench measures against). Whichever
//!    executor slot delivers a chunk's second half (chunk blob +
//!    chunk map) decodes the pair — decode overlaps with the other
//!    batches' transfers — and admits it to the cache. Modeled
//!    network time is taken as the **max over node batches**
//!    (parallel scatter-gather), not their sum. A node that fails
//!    mid-query does not fail the query: its batch's keys are
//!    re-planned against each key's next live replica (see
//!    [`ReadRouting`]) and only a key with no live replica left
//!    surfaces the error.
//! 3. **Extract** — [`RecordStream`] yields records chunk by chunk,
//!    decompressing each chunk's sub-chunks only when the consumer
//!    reaches it, so callers that stop early (point lookups, limits)
//!    never pay for the tail.
//!
//! [`RStore::execute_serial`](crate::store::RStore::execute_serial)
//! keeps the one-node-at-a-time reference path: it is the oracle the
//! property tests compare against and the baseline `bench_pipeline`
//! measures the scatter-gather speedup over.

use crate::cache::{ChunkCache, DecodedChunk};
use crate::chunk::Chunk;
use crate::chunkmap::ChunkMap;
use crate::error::CoreError;
use crate::model::{ChunkId, PrimaryKey, Record, VersionId};
use crate::obs::{MetricsRegistry, TraceSink, TID_NODE_BASE, TID_QUERY};
use crate::query;
use crate::serve::{FetchPool, RoundTicket, WaitGroup};
use crate::store::{PinnedSnapshot, CHUNK_TABLE, CMAP_TABLE};
use rstore_kvstore::{table_key, Cluster, Key, KvError};
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How the planner spreads a query's backend keys across each key's
/// replica set. With `replication = 1` the policies coincide; beyond
/// that they trade the reference behaviour for read throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReadRouting {
    /// Route every key to its first live replica in ring order — the
    /// original behaviour and the reference path: deterministic, and
    /// the one the cost-model experiments assume.
    #[default]
    FirstLive,
    /// Route each key to the least-loaded live member of its replica
    /// set (load = keys already planned onto that node for this
    /// query), falling back to first-live assignment when the greedy
    /// pass does not flatten the critical path. A hot span's node
    /// batches spread across `replication` copies instead of piling
    /// onto the first, so the max-over-nodes modeled time shrinks.
    Balanced,
}

/// What a read wants: the four query classes of §2.1 plus the full
/// scan used by store recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySpec {
    /// Full version retrieval: every record of `v`.
    Version(VersionId),
    /// Record retrieval: the value of `pk` in version `v`.
    Record {
        /// Primary key to look up.
        pk: PrimaryKey,
        /// Version to look it up in.
        v: VersionId,
    },
    /// Range retrieval: records of `v` with `lo <= pk <= hi`.
    Range {
        /// Inclusive lower bound.
        lo: PrimaryKey,
        /// Inclusive upper bound.
        hi: PrimaryKey,
        /// Version to restrict to.
        v: VersionId,
    },
    /// Evolution retrieval: every distinct value `pk` ever had.
    Evolution {
        /// Primary key whose history is wanted.
        pk: PrimaryKey,
    },
    /// Every record of every planned chunk (recovery scan).
    Scan,
}

impl QuerySpec {
    /// Extracts this query's records from one decoded chunk, in
    /// chunk-local order. Sub-chunks without requested members stay
    /// compressed.
    pub(crate) fn extract(&self, dc: &DecodedChunk) -> Result<Vec<Record>, CoreError> {
        match *self {
            QuerySpec::Version(v) => query::extract_version_records(&dc.chunk, &dc.map, v),
            QuerySpec::Record { pk, v } => {
                let Some(locals) = dc.map.iter_locals(v) else {
                    return Ok(Vec::new());
                };
                let keys = dc.local_keys();
                query::extract_from_iter(&dc.chunk, locals.filter(|&l| keys[l].pk == pk))
            }
            QuerySpec::Range { lo, hi, v } => {
                let Some(locals) = dc.map.iter_locals(v) else {
                    return Ok(Vec::new());
                };
                let keys = dc.local_keys();
                query::extract_from_iter(
                    &dc.chunk,
                    locals.filter(|&l| {
                        let k = keys[l].pk;
                        k >= lo && k <= hi
                    }),
                )
            }
            QuerySpec::Evolution { pk } => {
                let keys = dc.local_keys();
                query::extract_from_iter(&dc.chunk, (0..keys.len()).filter(|&l| keys[l].pk == pk))
            }
            QuerySpec::Scan => query::extract_all(&dc.chunk),
        }
    }
}

/// Which half of a chunk's backend state a fetched key carries. The
/// two halves live under different tables, so the hash ring may place
/// them on different nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Part {
    /// The serialized chunk (sub-chunk payloads).
    Blob,
    /// The serialized chunk map.
    Map,
}

impl Part {
    /// Stable slot of this half in per-chunk delivery gates.
    fn index(self) -> usize {
        match self {
            Part::Blob => 0,
            Part::Map => 1,
        }
    }
}

/// Tunables for hedged node batches: when a fetch round's straggler
/// outlives `factor ×` the health scoreboard's expected time for the
/// round's slowest batch (per-key service EWMA × batch length,
/// floored at `min` so a cold scoreboard still hedges eventually),
/// the unserved keys are re-issued to untried live replicas as backup
/// pool jobs and the first answer wins. Off by default
/// ([`StoreConfig::hedge`](crate::store::StoreConfig::hedge) is
/// `None`); hedging never changes answer bytes, only who serves them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Multiple of the expected batch time a straggler must exceed
    /// before backups are issued.
    pub factor: f64,
    /// Floor for the hedge delay, guarding against a cold scoreboard
    /// (EWMA zero would otherwise hedge instantly).
    pub min: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self {
            factor: 2.0,
            min: Duration::from_millis(1),
        }
    }
}

/// Per-execution tail-defense policy. Both knobs default to off, so
/// an unconfigured execution is bit-identical to the pre-hedging
/// executor; hedging additionally requires the pooled mode (the
/// serial oracle and the spawn baseline have no backup lane to run a
/// hedge on, and their answers must stay byte-identical regardless).
#[derive(Debug, Clone, Default)]
pub(crate) struct ExecPolicy {
    /// Hedge straggler node batches (pooled executor only).
    pub(crate) hedge: Option<HedgeConfig>,
    /// Time budget: accrued modeled fetch time (max over each round's
    /// parallel node batches, identically in every mode) plus any
    /// queue wait already charged by the caller.
    pub(crate) deadline: Option<Duration>,
    /// Shared metrics registry (PR 9): round/hedge histograms are
    /// recorded here. `None` when observability is disabled —
    /// recording is relaxed atomics only either way, so the default
    /// costs nothing measurable.
    pub(crate) obs: Option<Arc<MetricsRegistry>>,
    /// This query's trace sink, present only when the deterministic
    /// sampler selected it. Span names allocate, so an unsampled
    /// query must never see `Some` here.
    pub(crate) trace: Option<Arc<TraceSink>>,
}

/// One node's share of a scatter-gather fetch: the backend keys it
/// owns, tagged with the miss ordinal + half each key belongs to.
#[derive(Debug)]
pub struct NodeBatch {
    /// The serving node.
    node: usize,
    /// Backend keys to fetch from this node.
    keys: Vec<Key>,
    /// Parallel to `keys`: (miss ordinal, part).
    parts: Vec<(usize, Part)>,
}

impl NodeBatch {
    /// The node this batch is routed to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Keys in this batch.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the batch carries no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// The planner's output: span, cache residency, and per-node fetch
/// batches — everything the executor needs, precomputed, with no
/// backend round trip taken yet.
#[derive(Debug)]
pub struct QueryPlan {
    spec: QuerySpec,
    /// The routing policy the plan was built under; mid-query
    /// failover re-routes with the same policy.
    routing: ReadRouting,
    /// The query's span in planning order (slot i holds chunk_ids[i]).
    chunk_ids: Vec<u32>,
    /// Slot-aligned cache hits (`None` = must be fetched).
    resident: Vec<Option<Arc<DecodedChunk>>>,
    /// `(slot, chunk id)` of every chunk that must come from the
    /// backend, in planning order.
    misses: Vec<(usize, u32)>,
    /// Missing backend keys grouped by owning node, sorted by node.
    batches: Vec<NodeBatch>,
    /// Cache accounting (zeros when the cache is disabled).
    cache_hits: usize,
    cache_misses: usize,
    /// The snapshot pin taken at admission. It rides inside the plan
    /// so the whole plan → fetch → extract pipeline observes one
    /// generation, and so reclamation knows a reader may still need
    /// this generation's backend keys until the plan is dropped.
    pin: PinnedSnapshot,
}

impl QueryPlan {
    /// The query this plan answers.
    pub fn spec(&self) -> QuerySpec {
        self.spec
    }

    /// The planned chunk ids — the query's *span*, straight from one
    /// consultation of the projections.
    pub fn chunk_ids(&self) -> &[u32] {
        &self.chunk_ids
    }

    /// Number of chunks the plan touches.
    pub fn span(&self) -> usize {
        self.chunk_ids.len()
    }

    /// Distinct backend nodes the executor will contact.
    pub fn nodes_contacted(&self) -> usize {
        self.batches.len()
    }

    /// Largest per-node key batch.
    pub fn max_node_batch(&self) -> usize {
        self.batches.iter().map(NodeBatch::len).max().unwrap_or(0)
    }

    /// Chunks already resident in the decoded-chunk cache.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Chunks the executor must fetch.
    pub fn cache_misses(&self) -> usize {
        self.cache_misses
    }

    /// True when no backend round trip is needed.
    pub fn fully_cached(&self) -> bool {
        self.misses.is_empty()
    }

    /// The generation of the snapshot this plan is pinned to.
    pub fn generation(&self) -> u64 {
        self.pin.generation()
    }
}

/// The least-loaded of `candidates` under `load` (unknown nodes count
/// as 0). Strictly-less comparison keeps the *earliest* minimum, so
/// ties break toward ring order — the shared selection rule of the
/// planner's greedy pass and the executor's failover re-plan.
fn least_loaded(
    candidates: impl IntoIterator<Item = usize>,
    load: &FxHashMap<usize, usize>,
) -> Option<usize> {
    let cost = |n: usize| load.get(&n).copied().unwrap_or(0);
    let mut candidates = candidates.into_iter();
    let first = candidates.next()?;
    Some(candidates.fold(first, |pick, n| if cost(n) < cost(pick) { n } else { pick }))
}

/// Picks a serving node for every missing key under the configured
/// routing policy.
///
/// `FirstLive` sends each key to the head of its live replica set.
/// `Balanced` assigns greedily to the least-loaded live replica (ties
/// break toward ring order, so replication 1 degenerates to first-
/// live); because greedy assignment is order-sensitive it can — in
/// contrived replica-set overlaps — end up with a *taller* critical
/// path than first-live, so the result is compared against the
/// first-live assignment and the flatter of the two wins. Balanced
/// routing is therefore never worse than the reference policy on
/// `max_node_batch`.
fn route_keys(
    cluster: &Cluster,
    routing: ReadRouting,
    keys: &[Key],
) -> Result<Vec<usize>, CoreError> {
    if routing == ReadRouting::FirstLive {
        return keys
            .iter()
            .map(|key| cluster.owner_of(key).map_err(CoreError::from))
            .collect();
    }
    let candidates: Vec<Vec<usize>> = keys
        .iter()
        .map(|key| cluster.replicas_of(key).map_err(CoreError::from))
        .collect::<Result<_, _>>()?;
    let mut load: FxHashMap<usize, usize> = FxHashMap::default();
    let mut greedy = Vec::with_capacity(keys.len());
    for cands in &candidates {
        let pick = least_loaded(cands.iter().copied(), &load).expect("non-empty candidates");
        *load.entry(pick).or_insert(0) += 1;
        greedy.push(pick);
    }
    let greedy_max = load.values().copied().max().unwrap_or(0);
    let mut first_live_load: FxHashMap<usize, usize> = FxHashMap::default();
    for cands in &candidates {
        *first_live_load.entry(cands[0]).or_insert(0) += 1;
    }
    let first_live_max = first_live_load.values().copied().max().unwrap_or(0);
    if greedy_max > first_live_max {
        return Ok(candidates.into_iter().map(|c| c[0]).collect());
    }
    Ok(greedy)
}

/// Builds a [`QueryPlan`]: probe the cache per chunk, then group the
/// missing chunks' backend keys by serving node under the store's
/// [`ReadRouting`] policy.
pub(crate) fn build_plan(
    cluster: &Cluster,
    cache: &ChunkCache,
    routing: ReadRouting,
    spec: QuerySpec,
    chunk_ids: Vec<u32>,
    pin: PinnedSnapshot,
) -> Result<QueryPlan, CoreError> {
    let mut resident = Vec::with_capacity(chunk_ids.len());
    let mut misses = Vec::new();
    for (slot, &c) in chunk_ids.iter().enumerate() {
        // The probe floor is the generation whose publish last
        // rewrote this chunk's backend map: an older cached entry
        // would be torn against the pinned snapshot.
        let cached = cache.get(c, pin.floor(c));
        if cached.is_none() {
            misses.push((slot, c));
        }
        resident.push(cached);
    }
    // With the cache disabled every chunk "misses", but reporting that
    // would be indistinguishable from a cold enabled cache; a disabled
    // cache reports zeros, matching `RStore::cache_stats()`.
    let (cache_hits, cache_misses) = if cache.enabled() {
        (chunk_ids.len() - misses.len(), misses.len())
    } else {
        (0, 0)
    };

    let mut keys = Vec::with_capacity(misses.len() * 2);
    let mut key_parts = Vec::with_capacity(misses.len() * 2);
    for (m, &(_, c)) in misses.iter().enumerate() {
        for part in [Part::Blob, Part::Map] {
            keys.push(backend_key(c, part));
            key_parts.push((m, part));
        }
    }
    let nodes = route_keys(cluster, routing, &keys)?;
    let mut by_node: FxHashMap<usize, NodeBatch> = FxHashMap::default();
    for ((key, part), node) in keys.into_iter().zip(key_parts).zip(nodes) {
        let batch = by_node.entry(node).or_insert_with(|| NodeBatch {
            node,
            keys: Vec::new(),
            parts: Vec::new(),
        });
        batch.keys.push(key);
        batch.parts.push(part);
    }
    let mut batches: Vec<NodeBatch> = by_node.into_values().collect();
    batches.sort_unstable_by_key(NodeBatch::node);

    Ok(QueryPlan {
        spec,
        routing,
        chunk_ids,
        resident,
        misses,
        batches,
        cache_hits,
        cache_misses,
        pin,
    })
}

/// Per-execution fetch accounting, carried into
/// [`QueryStats`](crate::query::QueryStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchMetrics {
    /// Compressed bytes transferred from the backend (misses only).
    pub bytes_fetched: usize,
    /// Chunks served from the decoded-chunk cache.
    pub cache_hits: usize,
    /// Chunks fetched from the backend.
    pub cache_misses: usize,
    /// Distinct nodes contacted by the scatter-gather fetch,
    /// including replicas contacted only by mid-query failover.
    pub nodes_contacted: usize,
    /// Keys in the largest per-node batch.
    pub max_node_batch: usize,
    /// Node-batch fetch failures the executor recovered from by
    /// re-routing the batch's keys to their next live replica.
    pub failovers: usize,
    /// In-place retries of transient backend refusals, healed by the
    /// cluster's retry policy *without* re-routing. Counted separately
    /// from `failovers`: a flaky node is retried where it is, a dead
    /// one is failed over.
    pub retries: usize,
    /// Keys re-routed to another replica mid-query — after their
    /// serving node failed, or after a replica turned out never to
    /// have stored them (it was down during the write).
    pub rerouted_keys: usize,
    /// Backup node batches issued by the hedging layer after a
    /// round's straggler exceeded the scoreboard-derived threshold.
    pub hedges: usize,
    /// Hedge batches that finished while a straggler they covered for
    /// was still unfinished — the duplicate work that paid off.
    pub hedge_wins: usize,
    /// Modeled network time: the max over parallel node batches
    /// (their sum under
    /// [`RStore::execute_serial`](crate::store::RStore::execute_serial));
    /// failover retry rounds serialize after the round that exposed
    /// the failure, so their max adds on top.
    pub modeled_network: Duration,
    /// Time spent queued in admission control before execution began
    /// (pooled executor only; the serial and spawn executors bypass
    /// admission and report zero).
    pub queue_wait: Duration,
}

/// Snapshot of the work done so far, attached to
/// [`CoreError::DeadlineExceeded`] so a timed-out query's cost is
/// still accountable. No records were produced (extraction never
/// ran) and the caller patches wall-clock, queue-wait and generation
/// fields.
fn partial_stats(metrics: &FetchMetrics, span: usize) -> crate::query::QueryStats {
    crate::query::QueryStats {
        generation: 0,
        chunks_fetched: span,
        chunks_useful: 0,
        bytes_fetched: metrics.bytes_fetched,
        cache_hits: metrics.cache_hits,
        cache_misses: metrics.cache_misses,
        nodes_contacted: metrics.nodes_contacted,
        max_node_batch: metrics.max_node_batch,
        failovers: metrics.failovers,
        rerouted_keys: metrics.rerouted_keys,
        retries: metrics.retries,
        hedges: metrics.hedges,
        hedge_wins: metrics.hedge_wins,
        records: 0,
        elapsed: Duration::ZERO,
        queue_wait: metrics.queue_wait,
        modeled_network: metrics.modeled_network,
    }
}

/// A chunk mid-flight: its two halves arrive independently (possibly
/// from different nodes); whichever executor thread delivers the
/// second half decodes the pair.
struct PendingChunk {
    slot: usize,
    id: u32,
    parts: Mutex<(Option<rstore_kvstore::Value>, Option<rstore_kvstore::Value>)>,
    /// Per-half first-delivery gates (indexed by [`Part::index`]).
    /// With hedging a half can arrive twice — once from the original
    /// batch and once from the backup; only the first delivery may
    /// write `parts`, so the loser's duplicate is dropped without
    /// touching the decode state. Without hedging each half has a
    /// single server per round and the gates never contend.
    delivered: [AtomicBool; 2],
    decoded: OnceLock<Arc<DecodedChunk>>,
}

/// A key the current fetch round could not serve, queued for its next
/// live replica. `from` is the node that just failed (or answered
/// without the key); `cause` is the error to surface if the key runs
/// out of replicas. The backend key itself is not stored: it is a
/// pure function of the chunk id and half, rebuilt by
/// [`backend_key`], so the happy path never clones its key batches
/// for the retry machinery's sake.
struct RetryKey {
    m: usize,
    part: Part,
    from: usize,
    cause: CoreError,
}

/// The backend key of one half of a chunk (the inverse of the
/// planner's key construction, shared with the retry re-plan).
fn backend_key(id: u32, part: Part) -> Key {
    let table = match part {
        Part::Blob => CHUNK_TABLE,
        Part::Map => CMAP_TABLE,
    };
    table_key(table, &ChunkId(id).to_key())
}

fn record_err(first_err: &Mutex<Option<CoreError>>, e: CoreError) {
    let mut slot = first_err.lock().unwrap();
    if slot.is_none() {
        *slot = Some(e);
    }
}

/// Round bookkeeping for the *hedged* pooled executor (the unhedged
/// paths keep their plain [`WaitGroup`] barrier): counts the round's
/// outstanding jobs — originals plus any backups — and its
/// undelivered key-halves. The executor waits for either to reach
/// zero: all jobs done is the ordinary barrier, while all parts
/// delivered means the round is semantically complete even though a
/// hedged-away straggler still blocks on its slow node. The first
/// wait is timed, and its expiry is the hedge trigger.
struct RoundProgress {
    /// `(jobs_left, parts_left)`.
    state: Mutex<(usize, usize)>,
    changed: Condvar,
}

/// Why a [`RoundProgress::wait`] returned.
enum RoundWait {
    /// Every job (original and backup) finished; the retry queue is
    /// settled and the next failover round can be planned.
    JobsDrained,
    /// Every key-half was delivered and decoded. Straggler jobs may
    /// still be in flight but nothing more is owed to this query.
    PartsDelivered,
    /// The hedge delay elapsed with the round still unfinished.
    TimedOut,
}

impl RoundProgress {
    fn new(jobs: usize, parts: usize) -> Self {
        Self {
            state: Mutex::new((jobs, parts)),
            changed: Condvar::new(),
        }
    }

    /// Registers `n` backup jobs before they are submitted, so the
    /// round cannot drain between submission and first decrement.
    fn add_jobs(&self, n: usize) {
        self.state.lock().unwrap().0 += n;
    }

    fn job_done(&self) {
        let mut s = self.state.lock().unwrap();
        s.0 -= 1;
        if s.0 == 0 {
            self.changed.notify_all();
        }
    }

    /// Records one key-half delivered *and* (when it completed a
    /// pair) decoded — called by [`run_batch`] only after the decode,
    /// so `parts_left == 0` implies every chunk of the round is
    /// ready.
    fn part_done(&self) {
        let mut s = self.state.lock().unwrap();
        s.1 -= 1;
        if s.1 == 0 {
            self.changed.notify_all();
        }
    }

    /// Blocks until the round drains or completes; with a timeout the
    /// first expiry reports [`RoundWait::TimedOut`] (the caller then
    /// hedges and re-waits without one).
    fn wait(&self, timeout: Option<Duration>) -> RoundWait {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.1 == 0 {
                return RoundWait::PartsDelivered;
            }
            if s.0 == 0 {
                return RoundWait::JobsDrained;
            }
            match timeout {
                None => s = self.changed.wait(s).unwrap(),
                Some(t) => {
                    let (guard, res) = self.changed.wait_timeout(s, t).unwrap();
                    s = guard;
                    if res.timed_out() && s.0 > 0 && s.1 > 0 {
                        return RoundWait::TimedOut;
                    }
                }
            }
        }
    }
}

/// Decrements its round's job count when dropped — even if the batch
/// job panicked mid-decode — mirroring [`RoundTicket`] for the hedged
/// round's progress tracker.
struct ProgressTicket(Arc<RoundProgress>);

impl Drop for ProgressTicket {
    fn drop(&mut self) {
        self.0.job_done();
    }
}

/// Resolves a requested thread count for a parallel stage: `0` means
/// "use every core" (the machine's available parallelism). Shared by
/// the read executor's decode fan-out and the ingest pipeline's
/// encode fan-out so both sides size themselves the same way.
pub(crate) fn worker_count(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Maps owned `items` to an output vector in input order, spreading
/// the work across `workers` scoped threads in contiguous shards. The
/// shared fan-out primitive behind parallel sub-chunk compression and
/// the ingest pipeline's independent chunk-map builds.
pub(crate) fn parallel_map_owned<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    // Below ~2 items per worker the spawn overhead wins.
    let workers = workers.max(1).min((n / 2).max(1));
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let shard = n.div_ceil(workers);
    let mut shards: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    for _ in 0..workers {
        shards.push(items.by_ref().take(shard).collect());
    }
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                let f = &f;
                scope.spawn(move || shard.into_iter().map(f).collect::<Vec<U>>())
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel_map worker panicked"));
        }
    });
    out
}

/// Borrowed-item wrapper over [`parallel_map_owned`].
pub(crate) fn parallel_map<'a, T, U, F>(items: &'a [T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    parallel_map_owned(items.iter().collect(), workers, f)
}

/// Splits oversized node batches into sub-batches so spare executor
/// slots can decode concurrently when few nodes hold a large span
/// (the extreme: a single-node cluster would otherwise deserialize
/// every chunk on one executor thread). A node thread still serves
/// its sub-batches serially — per-node modeled time is summed across
/// them — but each reply's decode work lands on its own executor
/// slot, overlapping the node's remaining I/O.
///
/// `workers` is the parallelism actually available to this query:
/// the global core count for the spawn-per-query executor, but the
/// fetch pool's *currently free* slots for the pooled one — a wide
/// query arriving while the pool is busy serving other queries no
/// longer fans out as if it owned every core, so it cannot starve
/// concurrent queries' decode parallelism.
fn split_for_decode(batches: Vec<NodeBatch>, workers: usize) -> Vec<NodeBatch> {
    /// Don't bother splitting below this many keys per sub-batch
    /// (8 chunks): the extra round-trip bookkeeping would cost more
    /// than it buys.
    const MIN_SPLIT_KEYS: usize = 16;
    if batches.len() >= workers {
        return batches;
    }
    let total_keys: usize = batches.iter().map(NodeBatch::len).sum();
    let target = total_keys.div_ceil(workers).max(MIN_SPLIT_KEYS);
    let mut out = Vec::with_capacity(workers);
    for batch in batches {
        if batch.len() <= target {
            out.push(batch);
            continue;
        }
        // Balance the split so no sub-batch ends up as a tiny
        // remainder (which would pay the spawn without the win).
        let pieces = batch.len().div_ceil(target);
        let piece = batch.len().div_ceil(pieces);
        let NodeBatch {
            node,
            mut keys,
            mut parts,
        } = batch;
        while keys.len() > piece {
            let tail_keys = keys.split_off(keys.len() - piece);
            let tail_parts = parts.split_off(parts.len() - piece);
            out.push(NodeBatch {
                node,
                keys: tail_keys,
                parts: tail_parts,
            });
        }
        out.push(NodeBatch { node, keys, parts });
    }
    out
}

/// How a plan's fetch stage runs its node batches.
#[derive(Clone, Copy)]
pub(crate) enum ExecMode<'a> {
    /// One node batch after another on the calling thread, modeled
    /// network time summed over nodes: the reference walk the
    /// property tests oracle against.
    Serial,
    /// One scoped thread per node (sub-)batch, spawned and joined by
    /// this query alone — the pre-pool production executor, kept as
    /// the spawn-per-query baseline the throughput bench measures the
    /// shared pool against.
    Spawn,
    /// Batches submitted as jobs to the store's shared [`FetchPool`]
    /// and awaited behind a round barrier: fetch threads are bounded
    /// by the pool size no matter how many queries run concurrently.
    Pool(&'a FetchPool),
}

impl ExecMode<'_> {
    /// Whether modeled network time takes the parallel max over nodes
    /// (both concurrent executors) or the serial sum.
    fn parallel(&self) -> bool {
        !matches!(self, ExecMode::Serial)
    }
}

/// Shared state of one fetch execution, behind an `Arc` so pooled
/// batch jobs (which outlive no borrow) and scoped spawn threads can
/// run the identical [`run_batch`] code. The per-round fields are
/// drained with `mem::take` at each round barrier — every job of the
/// round has finished by then, so the round loop reads settled
/// values.
struct FetchCtx {
    cluster: Arc<Cluster>,
    cache: Arc<ChunkCache>,
    /// Generation the plan's pin admitted — stamps every cache insert
    /// so later readers know how fresh the decoded chunk is.
    gen: u64,
    pending: Vec<PendingChunk>,
    bytes: AtomicUsize,
    retried: AtomicUsize,
    first_err: Mutex<Option<CoreError>>,
    /// Per-round modeled nanos per node (a node serves its
    /// sub-batches serially, so they sum within the node).
    node_modeled: Mutex<FxHashMap<usize, u64>>,
    /// Per-round keys stranded by a failed or short reply.
    retries: Mutex<Vec<RetryKey>>,
    /// Per-round nodes whose whole batch failed (down or gone).
    failed_nodes: Mutex<FxHashSet<usize>>,
    /// Hedge batches that finished while a straggler they covered for
    /// was still unfinished (always 0 with hedging off).
    hedge_wins: AtomicUsize,
    /// Metrics registry, shared from [`ExecPolicy::obs`].
    obs: Option<Arc<MetricsRegistry>>,
    /// Trace sink for sampled queries; batch jobs add their spans on
    /// per-node lanes from whichever worker thread runs them.
    trace: Option<Arc<TraceSink>>,
}

/// Ships one node (sub-)batch, files stranded keys for the failover
/// re-plan, and decodes every chunk whose second half this reply
/// delivered. Runs on the caller's thread (serial), a scoped thread
/// (spawn), or a pool worker (pooled) — the failover semantics live
/// entirely in the data it records, not in who runs it. `progress`
/// is the hedged round's delivery tracker (`None` on the unhedged
/// paths): each first-delivered half is counted after any decode it
/// completed, so the tracker hitting zero means the round's chunks
/// are all in hand.
fn run_batch(ctx: &FetchCtx, batch: NodeBatch, progress: Option<&RoundProgress>) {
    let NodeBatch { node, keys, parts } = batch;
    // Span bookkeeping only for sampled queries: the guard (and its
    // name allocation) exists only when a sink does, so the unsampled
    // path is untouched.
    let n_keys = keys.len();
    let _batch_span = crate::obs::span_opt(&ctx.trace, TID_NODE_BASE + node as u32, || {
        format!("batch node {node} ({n_keys} keys)")
    });
    let reply = match ctx.cluster.fetch_from(node, keys) {
        Ok(reply) => reply,
        Err(e @ (KvError::NodeDown(_) | KvError::NodeGone(_))) => {
            // The node died between planning and fetch (or
            // mid-query): queue every key of the batch for its next
            // live replica instead of failing the whole query.
            ctx.failed_nodes.lock().unwrap().insert(node);
            let mut r = ctx.retries.lock().unwrap();
            for (m, part) in parts {
                r.push(RetryKey {
                    m,
                    part,
                    from: node,
                    cause: CoreError::Kv(e.clone()),
                });
            }
            return;
        }
        Err(e @ KvError::Transient(_)) => {
            // The cluster layer already retried in place and gave up;
            // fail the keys over to their next replicas. The node is
            // flaky, not dead, so it is *not* excluded — it may be
            // another key's only live replica — but each key's
            // tried-history keeps it from looping back.
            let mut r = ctx.retries.lock().unwrap();
            for (m, part) in parts {
                r.push(RetryKey {
                    m,
                    part,
                    from: node,
                    cause: CoreError::Kv(e.clone()),
                });
            }
            return;
        }
        Err(e) => {
            record_err(&ctx.first_err, e.into());
            return;
        }
    };
    ctx.retried.fetch_add(reply.retries, Ordering::Relaxed);
    let batch_bytes: usize = reply
        .values
        .iter()
        .map(|v| v.as_ref().map_or(0, |b| b.len()))
        .sum();
    ctx.bytes.fetch_add(batch_bytes, Ordering::Relaxed);
    *ctx.node_modeled.lock().unwrap().entry(node).or_insert(0) +=
        reply.modeled.as_nanos() as u64;
    for ((m, part), value) in parts.into_iter().zip(reply.values) {
        let p = &ctx.pending[m];
        let Some(value) = value else {
            // This replica never stored the key (e.g. it was down
            // during the write): try the next one before declaring
            // the chunk missing. If the *other* lane of a hedged pair
            // already delivered this half, nothing is owed (the
            // re-plan re-checks the gate, so this early skip is only
            // an optimization, not the correctness guard).
            if !p.delivered[part.index()].load(Ordering::Acquire) {
                ctx.retries.lock().unwrap().push(RetryKey {
                    m,
                    part,
                    from: node,
                    cause: CoreError::MissingChunk(p.id),
                });
            }
            continue;
        };
        if p.delivered[part.index()].swap(true, Ordering::AcqRel) {
            // Lost the first-answer-wins race (hedge vs original):
            // the half is already in hand, drop the duplicate.
            continue;
        }
        let ready = {
            let mut halves = p.parts.lock().unwrap();
            match part {
                Part::Blob => halves.0 = Some(value),
                Part::Map => halves.1 = Some(value),
            }
            if halves.0.is_some() && halves.1.is_some() {
                Some((halves.0.take().unwrap(), halves.1.take().unwrap()))
            } else {
                None
            }
        };
        // Both halves in hand: decode here, inside this batch's
        // executor slot, overlapping the other batches' I/O.
        if let Some((blob, map)) = ready {
            let _decode_span = crate::obs::span_opt(&ctx.trace, TID_NODE_BASE + node as u32, || {
                format!("decode C{}", p.id)
            });
            let decoded = Chunk::deserialize(&blob)
                .and_then(|chunk| Ok(DecodedChunk::new(chunk, ChunkMap::deserialize(&map)?)));
            match decoded {
                Ok(dc) => {
                    let dc = Arc::new(dc);
                    ctx.cache.insert(p.id, Arc::clone(&dc), ctx.gen);
                    let _ = p.decoded.set(dc);
                }
                Err(e) => record_err(&ctx.first_err, e),
            }
        }
        // Count the half only now — after the decode it may have
        // completed — so a zero parts-left reading implies every
        // chunk of the round is decoded, not merely delivered.
        if let Some(progress) = progress {
            progress.part_done();
        }
    }
}

/// One original batch of a hedged round, tracked so a hedge timeout
/// can target its undelivered halves and a finished backup can tell
/// whether it beat the straggler.
struct InflightBatch {
    node: usize,
    parts: Vec<(usize, Part)>,
    done: Arc<AtomicBool>,
}

/// Runs one pooled fetch round with hedging enabled: submits the
/// round's batches, waits up to the scoreboard-derived hedge delay,
/// issues at most one wave of backup batches for the stragglers'
/// unserved halves (grouped by untried replica exactly like the
/// failover re-plan), and waits the round out. Returns `true` when
/// every key-half was delivered before the last job finished — the
/// round is semantically complete and the caller may stop fetching
/// while hedged-away stragglers are still blocked on their slow
/// nodes.
#[allow(clippy::too_many_arguments)]
fn run_round_hedged(
    pool: &FetchPool,
    ctx: &Arc<FetchCtx>,
    batches: Vec<NodeBatch>,
    cfg: HedgeConfig,
    excluded: &FxHashSet<usize>,
    tried: &FxHashMap<(usize, Part), Vec<usize>>,
    contacted: &mut FxHashSet<usize>,
    metrics: &mut FetchMetrics,
) -> bool {
    let total_parts: usize = batches.iter().map(NodeBatch::len).sum();
    let progress = Arc::new(RoundProgress::new(batches.len(), total_parts));
    // Hedge delay: `factor ×` the expected time of the round's
    // slowest batch under the scoreboard's per-key service EWMAs,
    // floored at `min` (a cold scoreboard has EWMA zero and hedges at
    // the floor).
    let mut expected = Duration::ZERO;
    for b in &batches {
        let per_key = ctx.cluster.node_service_ewma(b.node);
        expected = expected.max(per_key.saturating_mul(b.len() as u32));
    }
    let delay = expected.mul_f64(cfg.factor.max(0.0)).max(cfg.min);
    let round_entry = Instant::now();

    let mut inflight = Vec::with_capacity(batches.len());
    for batch in batches {
        let done = Arc::new(AtomicBool::new(false));
        inflight.push(InflightBatch {
            node: batch.node,
            parts: batch.parts.clone(),
            done: Arc::clone(&done),
        });
        let ctx = Arc::clone(ctx);
        let progress = Arc::clone(&progress);
        pool.submit(move || {
            let _ticket = ProgressTicket(Arc::clone(&progress));
            run_batch(&ctx, batch, Some(&progress));
            done.store(true, Ordering::Release);
        });
    }

    let mut timeout = Some(delay);
    loop {
        match progress.wait(timeout) {
            RoundWait::JobsDrained => return false,
            RoundWait::PartsDelivered => return true,
            RoundWait::TimedOut => {
                // One hedge wave per round: subsequent waits are
                // untimed and simply see the round out.
                timeout = None;
                // The straggler outlived the hedge delay: the wait is
                // the tail time this round would have eaten unhedged.
                if let Some(r) = &ctx.obs {
                    r.hedge_wait.record_duration(delay);
                }
                if let Some(t) = &ctx.trace {
                    t.add("hedge wait".into(), TID_QUERY, round_entry);
                }
                // Re-issue each unfinished batch's undelivered halves
                // to the first untried live replica, grouped by
                // backup node. The replica filter mirrors the
                // failover re-plan (excluded nodes and each half's
                // tried-history are off the table), so a hedge never
                // lands where a retry would refuse to go; the
                // original's own node is skipped by construction.
                let mut by_node: FxHashMap<usize, (NodeBatch, Vec<Arc<AtomicBool>>)> =
                    FxHashMap::default();
                for orig in &inflight {
                    if orig.done.load(Ordering::Acquire) {
                        continue;
                    }
                    for &(m, part) in &orig.parts {
                        let p = &ctx.pending[m];
                        if p.delivered[part.index()].load(Ordering::Acquire) {
                            continue;
                        }
                        let key = backend_key(p.id, part);
                        let hist = tried.get(&(m, part));
                        let backup = ctx.cluster.replicas_of(&key).ok().and_then(|cands| {
                            cands.into_iter().find(|n| {
                                *n != orig.node
                                    && !excluded.contains(n)
                                    && hist.is_none_or(|h| !h.contains(n))
                            })
                        });
                        // No untried replica: nothing to hedge to,
                        // wait the straggler out.
                        let Some(node) = backup else {
                            continue;
                        };
                        let (b, origs) = by_node.entry(node).or_insert_with(|| {
                            (
                                NodeBatch {
                                    node,
                                    keys: Vec::new(),
                                    parts: Vec::new(),
                                },
                                Vec::new(),
                            )
                        });
                        b.keys.push(key);
                        b.parts.push((m, part));
                        origs.push(Arc::clone(&orig.done));
                    }
                }
                if by_node.is_empty() {
                    continue;
                }
                let mut hedges: Vec<(NodeBatch, Vec<Arc<AtomicBool>>)> =
                    by_node.into_values().collect();
                hedges.sort_unstable_by_key(|(b, _)| b.node);
                progress.add_jobs(hedges.len());
                metrics.hedges += hedges.len();
                if let Some(t) = &ctx.trace {
                    t.add(format!("hedge wave ({} batches)", hedges.len()), TID_QUERY, round_entry);
                }
                for (hedge, origs) in hedges {
                    contacted.insert(hedge.node);
                    let ctx = Arc::clone(ctx);
                    let progress = Arc::clone(&progress);
                    pool.submit(move || {
                        let _ticket = ProgressTicket(Arc::clone(&progress));
                        run_batch(&ctx, hedge, Some(&progress));
                        // A win: some straggler this backup covered
                        // for is still unfinished — the duplicate
                        // work actually cut the critical path.
                        if origs.iter().any(|d| !d.load(Ordering::Acquire)) {
                            ctx.hedge_wins.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            }
        }
    }
}

/// Runs a plan's fetch stage under the chosen [`ExecMode`] with the
/// default (everything off) [`ExecPolicy`]. All three executors share
/// [`run_batch`] and the round loop below, so the failover/retry
/// semantics are mode-independent by construction: a round's batches
/// run to completion (serially, on scoped threads, or behind the
/// pool's round barrier), then failed nodes are excluded and stranded
/// keys re-planned onto untried live replicas.
pub(crate) fn execute_plan(
    cluster: &Arc<Cluster>,
    cache: &Arc<ChunkCache>,
    plan: QueryPlan,
    mode: ExecMode<'_>,
) -> Result<ExecutedQuery, CoreError> {
    execute_plan_with(cluster, cache, plan, mode, ExecPolicy::default())
}

/// [`execute_plan`] with an explicit tail-defense [`ExecPolicy`]:
/// hedging (pooled mode only) and a fetch-stage deadline. The
/// deadline accrues each round's **max-over-nodes** modeled time in
/// every mode — including serial, whose *reported* modeled time stays
/// the honest sum — so the trip point is mode-independent.
pub(crate) fn execute_plan_with(
    cluster: &Arc<Cluster>,
    cache: &Arc<ChunkCache>,
    plan: QueryPlan,
    mode: ExecMode<'_>,
    policy: ExecPolicy,
) -> Result<ExecutedQuery, CoreError> {
    let QueryPlan {
        spec,
        routing,
        chunk_ids,
        mut resident,
        misses,
        batches,
        cache_hits,
        cache_misses,
        pin,
    } = plan;
    // `pin` stays bound to the end of this function: the snapshot
    // generation the plan was built against remains pinned (and its
    // backend keys un-reclaimed) until every fetch round is done.

    // `max_node_batch` is folded in per fetch round (a failover
    // retry can merge batches onto one surviving replica).
    let mut metrics = FetchMetrics {
        cache_hits,
        cache_misses,
        nodes_contacted: batches.len(),
        ..FetchMetrics::default()
    };

    if !misses.is_empty() {
        let pending: Vec<PendingChunk> = misses
            .iter()
            .map(|&(slot, id)| PendingChunk {
                slot,
                id,
                parts: Mutex::new((None, None)),
                delivered: [AtomicBool::new(false), AtomicBool::new(false)],
                decoded: OnceLock::new(),
            })
            .collect();
        let ctx = Arc::new(FetchCtx {
            cluster: Arc::clone(cluster),
            cache: Arc::clone(cache),
            gen: pin.generation(),
            pending,
            bytes: AtomicUsize::new(0),
            retried: AtomicUsize::new(0),
            first_err: Mutex::new(None),
            node_modeled: Mutex::new(FxHashMap::default()),
            retries: Mutex::new(Vec::new()),
            failed_nodes: Mutex::new(FxHashSet::default()),
            hedge_wins: AtomicUsize::new(0),
            obs: policy.obs.clone(),
            trace: policy.trace.clone(),
        });
        // Failover bookkeeping across retry rounds: nodes whose whole
        // batch failed are excluded from re-routing, and each key
        // remembers the replicas it already tried so a retry never
        // loops back. Both only grow, so the round loop terminates.
        let mut excluded: FxHashSet<usize> = FxHashSet::default();
        let mut tried: FxHashMap<(usize, Part), Vec<usize>> = FxHashMap::default();
        // Distinct nodes this query talked to, across *all* rounds:
        // a node serving both a primary batch and a later failover
        // batch counts once, so admission's load picture stays
        // honest.
        let mut contacted: FxHashSet<usize> = batches.iter().map(NodeBatch::node).collect();
        let mut modeled_nanos: u64 = 0;
        // The deadline's own accumulator: max-over-nodes per round in
        // *every* mode (serial included), so the budget trips at the
        // same point regardless of executor.
        let mut deadline_nanos: u64 = 0;
        let mut round_batches = batches;
        let mut round_idx = 0usize;

        while !round_batches.is_empty() {
            let round_t = Instant::now();
            // Round batches are grouped one-per-node, so a retry
            // round that merges several failed batches onto one
            // surviving replica raises the critical-path batch — keep
            // the reported max honest across rounds.
            metrics.max_node_batch = metrics
                .max_node_batch
                .max(round_batches.iter().map(NodeBatch::len).max().unwrap_or(0));
            // With spare executor slots and few nodes, split batches
            // so decode fans out beyond the node count. The pooled
            // executor sizes by the slots *currently free* — the pool
            // is shared, and this query is only entitled to what the
            // others left idle.
            let exec_batches = match mode {
                ExecMode::Serial => round_batches,
                ExecMode::Spawn => split_for_decode(round_batches, worker_count(0)),
                ExecMode::Pool(pool) => split_for_decode(round_batches, pool.free_slots().max(1)),
            };

            // Scatter-gather accounting: a node serves its
            // (sub-)batches serially, so its modeled time is the sum
            // over them; nodes overlap, so the parallel query's
            // network bill is the slowest node, while the serial walk
            // pays all nodes in turn.
            let mut round_served_early = false;
            match mode {
                // Hedging claims the pooled path outright — even a
                // single-batch round goes through the pool, because
                // the query thread must stay free to time the
                // straggler and submit its backup.
                ExecMode::Pool(pool) if policy.hedge.is_some() => {
                    round_served_early = run_round_hedged(
                        pool,
                        &ctx,
                        exec_batches,
                        policy.hedge.unwrap_or_default(),
                        &excluded,
                        &tried,
                        &mut contacted,
                        &mut metrics,
                    );
                }
                ExecMode::Pool(pool) if exec_batches.len() > 1 => {
                    let barrier = Arc::new(WaitGroup::new(exec_batches.len()));
                    for batch in exec_batches {
                        let ctx = Arc::clone(&ctx);
                        let ticket = RoundTicket(Arc::clone(&barrier));
                        pool.submit(move || {
                            let _ticket = ticket;
                            run_batch(&ctx, batch, None);
                        });
                    }
                    barrier.wait();
                }
                ExecMode::Spawn if exec_batches.len() > 1 => {
                    std::thread::scope(|scope| {
                        for batch in exec_batches {
                            let ctx = &ctx;
                            scope.spawn(move || run_batch(ctx, batch, None));
                        }
                    });
                }
                // A single batch runs inline on the query's own
                // thread in every mode: no spawn, no pool round trip.
                _ => {
                    for batch in exec_batches {
                        run_batch(&ctx, batch, None);
                    }
                }
            }

            // A retry round starts only after some batch of this round
            // came back failed, so rounds serialize: the round's
            // max-over-nodes (or serial sum) adds onto the total.
            // On an early (hedged) exit a straggler may still append
            // its contribution after this drain; that is correct to
            // drop — a hedged-away batch is off the critical path.
            let per_node = std::mem::take(&mut *ctx.node_modeled.lock().unwrap());
            let round_max = per_node.values().copied().max().unwrap_or(0);
            modeled_nanos += if mode.parallel() {
                round_max
            } else {
                per_node.values().copied().sum()
            };
            deadline_nanos += round_max;

            // Per-round observability: wall time of the round barrier,
            // the round's modeled straggler, and (when sampled) a
            // query-lane span bracketing the whole round.
            if let Some(r) = &ctx.obs {
                r.rounds.inc();
                r.round_wall.record_duration(round_t.elapsed());
                r.round_modeled.record(round_max);
            }
            if let Some(t) = &ctx.trace {
                t.add(format!("round {round_idx}"), TID_QUERY, round_t);
            }
            round_idx += 1;

            let newly_failed = std::mem::take(&mut *ctx.failed_nodes.lock().unwrap());
            metrics.failovers += newly_failed.len();
            excluded.extend(newly_failed);

            if ctx.first_err.lock().unwrap().is_some() {
                break;
            }

            if let Some(budget) = policy.deadline {
                let spent = Duration::from_nanos(deadline_nanos);
                if spent > budget {
                    metrics.bytes_fetched = ctx.bytes.load(Ordering::Relaxed);
                    metrics.retries = ctx.retried.load(Ordering::Relaxed);
                    metrics.modeled_network = Duration::from_nanos(modeled_nanos);
                    metrics.nodes_contacted = contacted.len();
                    metrics.hedge_wins = ctx.hedge_wins.load(Ordering::Relaxed);
                    return Err(CoreError::DeadlineExceeded {
                        budget,
                        spent,
                        partial: Box::new(partial_stats(&metrics, chunk_ids.len())),
                    });
                }
            }

            // Every half of a hedged round delivered: stragglers
            // still in flight owe nothing and any retries they filed
            // are for halves already in hand — stop fetching.
            if round_served_early {
                break;
            }

            // Re-plan every queued key against its untried live
            // replicas — under `FirstLive` the next one in ring
            // order, under `Balanced` the least-loaded of them, so a
            // dead node's hot-span keys spread over the survivors
            // instead of piling onto one. A key with no replica left
            // fails the query with the error that stranded it.
            let round_retries = std::mem::take(&mut *ctx.retries.lock().unwrap());
            let mut by_node: FxHashMap<usize, NodeBatch> = FxHashMap::default();
            let mut retry_load: FxHashMap<usize, usize> = FxHashMap::default();
            let mut replanned: FxHashSet<(usize, Part)> = FxHashSet::default();
            for rk in round_retries {
                let hist = tried.entry((rk.m, rk.part)).or_default();
                hist.push(rk.from);
                // A hedged round can strand the same half from both
                // lanes, or strand one lane while the other
                // delivered: re-plan each half at most once, and only
                // while it is still undelivered. Both guards are
                // no-ops without hedging (one lane per half).
                if ctx.pending[rk.m].delivered[rk.part.index()].load(Ordering::Acquire)
                    || !replanned.insert((rk.m, rk.part))
                {
                    continue;
                }
                let key = backend_key(ctx.pending[rk.m].id, rk.part);
                let next = ctx.cluster.replicas_of(&key).ok().and_then(|cands| {
                    let mut usable = cands
                        .into_iter()
                        .filter(|n| !excluded.contains(n) && !hist.contains(n));
                    match routing {
                        ReadRouting::FirstLive => usable.next(),
                        ReadRouting::Balanced => least_loaded(usable, &retry_load),
                    }
                });
                let Some(node) = next else {
                    record_err(&ctx.first_err, rk.cause);
                    continue;
                };
                *retry_load.entry(node).or_insert(0) += 1;
                metrics.rerouted_keys += 1;
                contacted.insert(node);
                let batch = by_node.entry(node).or_insert_with(|| NodeBatch {
                    node,
                    keys: Vec::new(),
                    parts: Vec::new(),
                });
                batch.keys.push(key);
                batch.parts.push((rk.m, rk.part));
            }
            if ctx.first_err.lock().unwrap().is_some() {
                break;
            }
            let mut next_round: Vec<NodeBatch> = by_node.into_values().collect();
            next_round.sort_unstable_by_key(NodeBatch::node);
            round_batches = next_round;
        }

        if let Some(e) = ctx.first_err.lock().unwrap().take() {
            return Err(e);
        }
        metrics.bytes_fetched = ctx.bytes.load(Ordering::Relaxed);
        metrics.retries = ctx.retried.load(Ordering::Relaxed);
        metrics.modeled_network = Duration::from_nanos(modeled_nanos);
        metrics.nodes_contacted = contacted.len();
        metrics.hedge_wins = ctx.hedge_wins.load(Ordering::Relaxed);
        for p in &ctx.pending {
            // Cloning out of the `OnceLock` (instead of consuming the
            // context) keeps this correct even if a finished pool job
            // still holds its `Arc<FetchCtx>` clone for a moment.
            let Some(dc) = p.decoded.get().cloned() else {
                // Unreachable with a well-behaved backend (a short or
                // failed batch records an error above), but a logic
                // error must not panic the query path.
                return Err(CoreError::Codec(format!(
                    "chunk C{} incomplete after scatter-gather",
                    p.id
                )));
            };
            resident[p.slot] = Some(dc);
        }
    }

    let chunks = resident
        .into_iter()
        .map(|slot| slot.expect("planner covers every slot: hit or miss"))
        .collect();
    Ok(ExecutedQuery {
        spec,
        chunk_ids,
        chunks,
        metrics,
    })
}

/// A plan after its fetch stage: every spanned chunk decoded and in
/// planning order, plus the fetch accounting. Extraction has not
/// happened yet — iterate via [`ExecutedQuery::into_stream`].
#[derive(Debug)]
pub struct ExecutedQuery {
    spec: QuerySpec,
    chunk_ids: Vec<u32>,
    chunks: Vec<Arc<DecodedChunk>>,
    /// Fetch accounting for this execution.
    pub metrics: FetchMetrics,
}

impl ExecutedQuery {
    /// The decoded chunks, in planning order.
    pub fn chunks(&self) -> &[Arc<DecodedChunk>] {
        &self.chunks
    }

    /// The planned chunk ids, in planning order.
    pub fn chunk_ids(&self) -> &[u32] {
        &self.chunk_ids
    }

    /// Consumes the execution into the decoded chunks (recovery scan).
    pub fn into_chunks(self) -> Vec<Arc<DecodedChunk>> {
        self.chunks
    }

    /// Streams the query's records chunk by chunk.
    pub fn into_stream(self) -> RecordStream {
        RecordStream {
            spec: self.spec,
            metrics: self.metrics,
            chunks: self.chunks.into_iter(),
            buffer: Vec::new().into_iter(),
            chunks_useful: 0,
            records_yielded: 0,
            failed: false,
        }
    }
}

/// Streaming record extraction: each chunk's sub-chunks are
/// decompressed only when the consumer reaches that chunk, so early
/// termination never pays for the tail of the span. Records come out
/// grouped by chunk, in chunk-local order within each chunk.
#[derive(Debug)]
pub struct RecordStream {
    spec: QuerySpec,
    metrics: FetchMetrics,
    chunks: std::vec::IntoIter<Arc<DecodedChunk>>,
    buffer: std::vec::IntoIter<Record>,
    chunks_useful: usize,
    records_yielded: usize,
    failed: bool,
}

impl RecordStream {
    /// The fetch accounting of the execution behind this stream.
    pub fn metrics(&self) -> FetchMetrics {
        self.metrics
    }

    /// Chunks that contributed at least one record *so far*.
    pub fn chunks_useful(&self) -> usize {
        self.chunks_useful
    }

    /// Records yielded so far.
    pub fn records_yielded(&self) -> usize {
        self.records_yielded
    }

    /// Drains the remaining records into a vector (the materializing
    /// entry points), stopping at the first extraction error.
    pub fn drain(&mut self) -> Result<Vec<Record>, CoreError> {
        let mut out = Vec::new();
        for record in &mut *self {
            out.push(record?);
        }
        Ok(out)
    }
}

impl Iterator for RecordStream {
    type Item = Result<Record, CoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(record) = self.buffer.next() {
                self.records_yielded += 1;
                return Some(Ok(record));
            }
            let dc = self.chunks.next()?;
            match self.spec.extract(&dc) {
                Ok(records) => {
                    if !records.is_empty() {
                        self.chunks_useful += 1;
                        self.buffer = records.into_iter();
                    }
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}
