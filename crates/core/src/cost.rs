//! The analytical cost model of paper Table 1.
//!
//! Compares the storage strategies "along different dimensions under
//! some simplifying assumptions": `n` versions arranged in a chain,
//! each with `m_v` records of size `s`; every update touches a
//! fraction `d` of the records; record-level compression achieves
//! ratio `c` (typically `c·d ≪ 1`); chunks hold `s_c` bytes. For each
//! strategy the model gives total storage, the cost of a random full
//! version retrieval (data volume and query count), and the cost of a
//! point (single-record) query.

/// Model parameters (Table 1 caption).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Number of versions, arranged in a chain.
    pub n: f64,
    /// Records per version (constant).
    pub m_v: f64,
    /// Fraction of records updated per version step.
    pub d: f64,
    /// Compression ratio achieved on co-located similar records.
    pub c: f64,
    /// Record size in bytes.
    pub s: f64,
    /// Chunk size in bytes.
    pub s_c: f64,
}

/// The costs of one strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyCosts {
    /// Strategy name as in Table 1.
    pub name: &'static str,
    /// Total storage in bytes.
    pub storage: f64,
    /// Bytes retrieved for a random full-version query.
    pub version_data: f64,
    /// Backend queries issued for a random full-version query.
    pub version_queries: f64,
    /// Bytes retrieved for a point query.
    pub point_data: f64,
    /// Backend queries issued for a point query.
    pub point_queries: f64,
}

impl CostModel {
    /// "Independent w/chunking": every version's records stored
    /// independently (no cross-version dedup), packed into chunks.
    pub fn independent_chunked(&self) -> StrategyCosts {
        StrategyCosts {
            name: "Independent w/chunking",
            storage: self.n * self.m_v * self.s,
            version_data: self.m_v * self.s,
            version_queries: (self.m_v * self.s / self.s_c).max(1.0),
            point_data: self.s_c,
            point_queries: 1.0,
        }
    }

    /// DELTA: one full version plus n−1 compressed deltas in chains.
    pub fn delta(&self) -> StrategyCosts {
        let tail = self.c * self.d * (self.n - 1.0) * self.m_v * self.s;
        StrategyCosts {
            name: "DELTA",
            storage: self.m_v * self.s + tail,
            // A random version sits halfway down the chain on average.
            version_data: self.m_v * self.s + tail / 2.0,
            version_queries: self.n / 2.0,
            point_data: self.m_v * self.s + tail / 2.0,
            point_queries: self.n / 2.0,
        }
    }

    /// SUBCHUNK: all records of a key compressed together.
    pub fn subchunk(&self) -> StrategyCosts {
        let per_key = self.s + self.c * self.d * (self.n - 1.0) * self.s;
        StrategyCosts {
            name: "SUBCHUNK",
            storage: self.m_v * per_key,
            version_data: self.m_v * per_key,
            version_queries: self.m_v,
            point_data: per_key,
            point_queries: 1.0,
        }
    }

    /// Single address space: each record under its composite key.
    pub fn single_address(&self) -> StrategyCosts {
        StrategyCosts {
            name: "Single-address space",
            storage: self.m_v * self.s + self.d * (self.n - 1.0) * self.m_v * self.s,
            version_data: self.m_v * self.s,
            version_queries: self.m_v,
            point_data: self.s,
            point_queries: 1.0,
        }
    }

    /// All four rows in Table 1 order.
    pub fn all(&self) -> [StrategyCosts; 4] {
        [
            self.independent_chunked(),
            self.delta(),
            self.subchunk(),
            self.single_address(),
        ]
    }
}

impl Default for CostModel {
    /// Defaults mirroring the paper's experimental regime: 1000
    /// versions of 100K 100-byte records, 5% updates, 10× compression
    /// on similar records, 1 MB chunks.
    fn default() -> Self {
        Self {
            n: 1000.0,
            m_v: 100_000.0,
            d: 0.05,
            c: 0.1,
            s: 100.0,
            s_c: 1_048_576.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn chunking_answers_version_queries_with_few_requests() {
        let m = model();
        let chunked = m.independent_chunked();
        let single = m.single_address();
        // The §2.3 claim: chunking reduces queries by orders of
        // magnitude vs per-record retrieval.
        assert!(chunked.version_queries * 100.0 < single.version_queries);
    }

    #[test]
    fn delta_storage_beats_uncompressed_when_cd_small() {
        let m = model();
        assert!(m.delta().storage < m.single_address().storage);
        assert!(m.delta().storage < m.independent_chunked().storage);
    }

    #[test]
    fn subchunk_has_best_storage_with_compression() {
        let m = model();
        let rows = m.all();
        let sub = m.subchunk();
        for r in &rows {
            assert!(
                sub.storage <= r.storage + 1e-6,
                "{} storage {} < subchunk {}",
                r.name,
                r.storage,
                sub.storage
            );
        }
    }

    #[test]
    fn delta_point_queries_are_abysmal() {
        // The paper's core criticism of DELTA.
        let m = model();
        assert!(m.delta().point_queries > 100.0 * m.subchunk().point_queries);
        assert!(m.delta().point_data > 1000.0 * m.single_address().point_data);
    }

    #[test]
    fn subchunk_version_retrieval_reads_irrelevant_data() {
        let m = model();
        // SUBCHUNK fetches every key's whole history for one version.
        assert!(m.subchunk().version_data > m.independent_chunked().version_data);
    }

    #[test]
    fn all_returns_four_named_rows() {
        let rows = model().all();
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "Independent w/chunking",
                "DELTA",
                "SUBCHUNK",
                "Single-address space"
            ]
        );
    }
}
