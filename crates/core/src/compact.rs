//! Background compaction & repartitioning: winning offline layout
//! quality back from a long-running online store.
//!
//! The paper's online path (§4) trades layout quality for ingest
//! latency: every batch flush appends a fresh chunk set and placed
//! records are never re-partitioned, so a long-running store
//! fragments — many under-filled chunks, versions spanning ever more
//! chunks, growing query fan-out. The offline partitioners that the
//! evaluation shows matter most run only at load time; the paper
//! leaves periodic repartitioning as future work. This module is that
//! subsystem: [`RStore::compact`] measures fragmentation
//! ([`RStore::fragmentation_stats`]), selects a victim chunk set
//! under a [`CompactionConfig`] policy, extracts the victims' records
//! through the existing plan → fetch → extract pipeline, re-runs the
//! configured partitioner over the merged items (re-grouping same-key
//! records into §3.4 sub-chunks), rebuilds chunks and chunk maps
//! through the parallel ingest pipeline, and reclaims the obsolete
//! backend keys with one batched delete — all without taking the
//! store offline.
//!
//! ## Crash-safety ordering
//!
//! Compaction never overwrites a live key. Chunk ids are allocated
//! densely but **never reused**: the rebuilt generation takes fresh
//! ids past the current maximum, and the victims become retired
//! tombstones. The backend sees three strictly ordered effects:
//!
//! 1. **Write the new generation** — chunk blobs and chunk maps under
//!    fresh ids, streamed through the same per-node batched writer
//!    the ingest pipeline uses. Until step 2 lands, the persisted
//!    metadata still references only the old generation, which is
//!    fully intact — a crash here leaves harmless orphaned new keys.
//! 2. **Persist the metadata** — projections (rewritten to reference
//!    the new ids), version graph, chunk count and the retired-id
//!    list, in one batched put. This is the commit point: a store
//!    reopened before it serves the old generation, after it the new.
//! 3. **Batch-delete the victims** — the old generation's chunk and
//!    chunk-map keys, one `MultiDelete` per owning node
//!    (`Cluster::multi_delete_scatter`). A crash between 2 and 3
//!    leaves harmless orphaned *old* keys; the recovery scan plans
//!    only live ids and never touches them.
//!
//! In-memory state (locator, projections, chunk maps, decoded-chunk
//! cache) swaps between steps 1 and 2, so a *failed* step 2 leaves
//! the running process serving the new generation (whose chunks are
//! durable) while a restart would serve the old — both consistent,
//! nothing lost.
//!
//! Commits still buffered in the delta store are untouched: their
//! records are not yet placed, and their version ids are excluded
//! from the rebuilt chunk maps so the next flush indexes them
//! normally (chunk maps require strictly increasing version pushes).

use crate::chunk::{Chunk, SubChunk};
use crate::chunkmap::ChunkMap;
use crate::cost::CostModel;
use crate::error::CoreError;
use crate::model::{ChunkId, CompositeKey, Record, VersionId};
use crate::partition::PartitionInput;
use crate::plan;
use crate::query;
use crate::store::{self, DeferredReclaim, RStore, StoreMut, CHUNK_TABLE, CMAP_TABLE};
use bytes::Bytes;
use rstore_kvstore::{table_key, Key};
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One rebuilt chunk's map-build job: the chunk id, its record
/// count, and the `(version, sorted locals)` entries to encode.
type RebuildMapJob = (u32, usize, Vec<(VersionId, Vec<usize>)>);

/// Compaction policy: which chunks are fragmentation victims and when
/// the store compacts on its own. [`RStore::compact`] can always be
/// called explicitly; the auto-trigger only adds a cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionConfig {
    /// Fill threshold: a live chunk whose compressed bytes are below
    /// `min_fill × chunk_capacity` is a victim. Online flushes of
    /// small batches leave many such chunks behind.
    pub min_fill: f64,
    /// Span threshold: when non-zero, every chunk in the span of a
    /// version spanning more than `span_limit` chunks is also a
    /// victim, unless the chunk is already packed to capacity
    /// (rewriting full chunks costs much and usually buys little).
    /// `0` disables the rule.
    pub span_limit: usize,
    /// Auto-trigger cadence: run a compaction after every
    /// `every_flushes` batch flushes. `0` (the default) disables
    /// auto-compaction entirely.
    pub every_flushes: usize,
    /// Minimum number of victims worth acting on: with fewer
    /// candidates [`RStore::compact`] is a no-op (merging one chunk
    /// into itself reclaims nothing).
    pub min_chunks: usize,
    /// Budget for incremental compaction: when non-zero, one
    /// [`RStore::compact`] call rebuilds the victim set in slices of
    /// at most this many chunks, each slice cutting over (persist +
    /// publish) independently, so no single publish covers an
    /// unbounded rebuild and a failure loses only the unfinished
    /// slice — the rest of the victims stay queued and the next call
    /// resumes them. `0` (the default) keeps the single-slice path,
    /// including its escalate-to-full-repartition fallback.
    pub max_chunks_per_slice: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        Self {
            min_fill: 0.6,
            span_limit: 0,
            every_flushes: 0,
            min_chunks: 2,
            max_chunks_per_slice: 0,
        }
    }
}

impl CompactionConfig {
    /// True when the auto-trigger cadence has elapsed.
    pub fn auto_due(&self, flushes_since_compaction: usize) -> bool {
        self.every_flushes > 0 && flushes_since_compaction >= self.every_flushes
    }
}

/// A point-in-time measurement of layout decay, computable without
/// running a compaction ([`RStore::fragmentation_stats`]): how full
/// the chunks are, how many chunks a version retrieval touches, and
/// how that compares with an ideally chunked layout.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FragmentationStats {
    /// Live chunks (compaction-retired and reclaimed ids excluded).
    pub live_chunks: usize,
    /// Chunk ids retired by past compactions and still tombstoned
    /// (their reclamation may be deferred behind old snapshot pins).
    pub retired_chunks: usize,
    /// Retired slots a reclamation pass has already moved to the
    /// reusable free list. Kept separate from `retired_chunks` so the
    /// fill statistics below — which average over *live* chunks only —
    /// stay honest after reclamation shrinks the tombstone count.
    pub reclaimed_chunks: usize,
    /// Mean compressed fill fraction of live chunks (compressed bytes
    /// over `chunk_capacity`; slack can push a chunk past 1.0).
    pub mean_fill: f64,
    /// Live chunks below the policy's `min_fill` threshold.
    pub under_filled: usize,
    /// Σ_v span(v) — the Fig. 8 metric.
    pub total_version_span: usize,
    /// Mean chunks per version retrieval.
    pub mean_version_span: f64,
    /// Worst version's span.
    pub max_version_span: usize,
    /// Estimated read amplification of a full version retrieval:
    /// `mean_version_span` over the per-version query count an
    /// ideally chunked layout would need (the "Independent
    /// w/chunking" row of the paper's Table 1 cost model,
    /// instantiated with this store's observed mean version width and
    /// mean stored record size). ≈ 1 right after an offline load,
    /// grows as the online path fragments the layout.
    pub est_read_amplification: f64,
}

/// Per-stage wall-clock breakdown of one compaction — the
/// counterpart of `IngestStages` for the maintenance path. The
/// rebuild stages overlap their backend writes exactly as ingest
/// does, so fields need not sum to the end-to-end time.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactionStages {
    /// Fragmentation measurement + victim selection.
    pub measure: Duration,
    /// Fetching and decoding the victim chunks through the
    /// plan → fetch → extract pipeline.
    pub extract: Duration,
    /// Sub-chunk re-grouping plus the partitioning algorithm.
    pub partition: Duration,
    /// Chunk assembly + serialization of the new generation
    /// (overlaps the streaming writes).
    pub rebuild: Duration,
    /// Chunk-map builds for the new generation (overlaps writes).
    pub index: Duration,
    /// Wall time genuinely blocked on backend writes.
    pub write: Duration,
    /// Modeled network time of the new generation's writes (max over
    /// parallel nodes, summed across sequential stages).
    pub modeled_write: Duration,
    /// Wall time spent reclaiming the old generation's keys.
    pub delete: Duration,
    /// Modeled network time of the batched deletes (max over nodes).
    pub modeled_delete: Duration,
    /// Worker threads the parallel stages ran on.
    pub workers: usize,
}

impl CompactionStages {
    /// Folds one slice's stage times into the run-wide totals.
    fn absorb(&mut self, o: &CompactionStages) {
        self.measure += o.measure;
        self.extract += o.extract;
        self.partition += o.partition;
        self.rebuild += o.rebuild;
        self.index += o.index;
        self.write += o.write;
        self.modeled_write += o.modeled_write;
        self.delete += o.delete;
        self.modeled_delete += o.modeled_delete;
    }
}

/// Report from one [`RStore::compact`] run: what moved, what it cost,
/// and the before/after fragmentation measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactionReport {
    /// Chunks retired (the victim set).
    pub victims: usize,
    /// Chunks the rebuilt generation produced.
    pub new_chunks: usize,
    /// Records extracted and re-placed.
    pub records_moved: usize,
    /// Sub-chunks rebuilt (same-key groups of up to `max_subchunk`).
    pub subchunks_built: usize,
    /// Key + value bytes written for the new generation (chunk blobs,
    /// chunk maps; before replication).
    pub bytes_rewritten: usize,
    /// Compressed chunk bytes the retired generation occupied (chunk
    /// maps excluded — their serialized size is not tracked).
    pub bytes_reclaimed: usize,
    /// Backend replica copies removed by the batched deletes.
    pub keys_deleted: usize,
    /// True when the batched delete failed *after* the commit point:
    /// the compaction itself is durable and serving, but the retired
    /// generation's keys linger as unreferenced orphans.
    pub reclamation_failed: bool,
    /// Fragmentation before the compaction.
    pub before: FragmentationStats,
    /// Fragmentation after the compaction.
    pub after: FragmentationStats,
    /// Incremental slices that cut over (1 on the single-slice path).
    pub slices: usize,
    /// Per-stage timing breakdown (summed across slices).
    pub stages: CompactionStages,
    /// End-to-end wall time.
    pub total_time: Duration,
}

impl RStore {
    /// Measures layout decay: per-chunk fill, per-version chunk span
    /// and estimated read amplification, from the in-memory
    /// projections and size tables — no backend round trip. Operators
    /// (and the experiment binaries) use this to watch a long-running
    /// online store fragment without paying for a compaction.
    pub fn fragmentation_stats(&self) -> FragmentationStats {
        let snap = self.snapshot();
        let cfg = &self.config.compaction;
        let capacity = self.config.chunk_capacity.max(1) as f64;
        let mut live = 0usize;
        let mut fill_sum = 0.0f64;
        let mut under = 0usize;
        for c in snap.live_chunk_ids() {
            let fill = snap.chunk_sizes()[c as usize] as f64 / capacity;
            live += 1;
            fill_sum += fill;
            if fill < cfg.min_fill {
                under += 1;
            }
        }
        let versions = snap.graph().len();
        let mut total_span = 0usize;
        let mut max_span = 0usize;
        for v in 0..versions {
            let span = snap.projections().version_span(VersionId(v as u32));
            total_span += span;
            max_span = max_span.max(span);
        }
        let mean_span = if versions == 0 {
            0.0
        } else {
            total_span as f64 / versions as f64
        };

        // Ideal per-version query count from the Table 1 cost model's
        // "Independent w/chunking" row, fed the store's observed
        // parameters (mean version width, mean stored record size).
        // Only that row is consulted, so the delta/compression
        // parameters are irrelevant here.
        let placed = snap.placed_records();
        let est = if placed == 0 || versions == 0 || live == 0 {
            1.0
        } else {
            let m_v = snap
                .record_counts()
                .iter()
                .sum::<usize>() as f64
                / versions as f64;
            let storage: usize = snap.chunk_sizes().iter().sum();
            let s = storage as f64 / placed as f64;
            let model = CostModel {
                n: versions as f64,
                m_v,
                d: 0.0,
                c: 1.0,
                s,
                s_c: capacity,
            };
            let ideal_queries = model.independent_chunked().version_queries;
            mean_span / ideal_queries.max(1.0)
        };

        FragmentationStats {
            live_chunks: live,
            retired_chunks: snap.retired_len(),
            reclaimed_chunks: snap.free_len(),
            mean_fill: if live == 0 { 0.0 } else { fill_sum / live as f64 },
            under_filled: under,
            total_version_span: total_span,
            mean_version_span: mean_span,
            max_version_span: max_span,
            est_read_amplification: est,
        }
    }

    /// The victim set under the configured policy, in ascending id
    /// order: under-filled live chunks, plus (when `span_limit` is
    /// set) the non-full chunks of any version spanning too widely.
    fn select_victims(&self, st: &StoreMut) -> Vec<u32> {
        let cfg = &self.config.compaction;
        let capacity = self.config.chunk_capacity.max(1) as f64;
        let fill = |c: u32| st.chunk_sizes[c as usize] as f64 / capacity;
        let mut set: FxHashSet<u32> = st
            .live_chunk_ids()
            .into_iter()
            .filter(|&c| fill(c) < cfg.min_fill)
            .collect();
        if cfg.span_limit > 0 {
            for v in 0..st.graph.len() {
                let chunks = st.projections.chunks_of_version(VersionId(v as u32));
                if chunks.len() > cfg.span_limit {
                    set.extend(chunks.iter().copied().filter(|&c| fill(c) < 1.0));
                }
            }
        }
        let mut victims: Vec<u32> = set.into_iter().collect();
        victims.sort_unstable();
        victims
    }

    /// Compacts the store in place: retires the policy's victim
    /// chunks, re-partitions their records with the configured
    /// partitioner, writes the rebuilt generation under fresh chunk
    /// ids, and reclaims the old keys with batched deletes. Returns
    /// `Ok(None)` when fewer than `min_chunks` victims exist or no
    /// candidate layout improves on the current one (nothing is
    /// written in either case). See the module docs for the
    /// crash-safety ordering.
    ///
    /// Repartitioning a *sparse* subset of records over the whole
    /// version tree can mix records with very different lifetimes
    /// into one chunk and widen version spans, so the cutover is
    /// guarded: the candidate layout's span contribution is compared
    /// against the victims' current contribution *before any backend
    /// write*, and if the partial rebuild would regress, compaction
    /// escalates once to a full repartition of every live chunk —
    /// which reproduces the offline load's layout quality. If even
    /// that does not improve, the store is already well-laid-out and
    /// the call is a no-op.
    ///
    /// Pending (unflushed) commits are untouched and flush normally
    /// afterwards.
    pub fn compact(&self) -> Result<Option<CompactionReport>, CoreError> {
        let mut guard = self.state.lock().unwrap();
        self.compact_locked(&mut guard)
    }

    /// [`RStore::compact`] with the writer state already locked — the
    /// entry point the flush path's auto-trigger uses so compaction
    /// rides the mutator lock it already holds.
    pub(crate) fn compact_locked(
        &self,
        st: &mut StoreMut,
    ) -> Result<Option<CompactionReport>, CoreError> {
        let result = self.compact_inner(st);
        // Every attempt refreshes the parked maintenance error: a
        // success (or a healthy no-op) clears a stale auto-compaction
        // failure, a new failure replaces it — so
        // [`RStore::last_compaction_error`] always reflects the most
        // recent attempt.
        st.last_compaction_error = result.as_ref().err().cloned();
        result
    }

    fn compact_inner(&self, st: &mut StoreMut) -> Result<Option<CompactionReport>, CoreError> {
        let t0 = Instant::now();
        // An attempt restarts the auto-trigger cadence even when it
        // changes nothing — otherwise every subsequent flush would
        // re-measure a layout already known to be healthy.
        st.flushes_since_compaction = 0;
        let min_chunks = self.config.compaction.min_chunks.max(1);
        let slice_cap = self.config.compaction.max_chunks_per_slice;

        // -- measure: fragmentation + victim selection ----------------
        // A non-empty victim queue is a previous call's unfinished
        // remainder (a slice failed): resume it before selecting
        // fresh victims.
        let t = Instant::now();
        let before = self.fragmentation_stats();
        if st.victim_queue.is_empty() {
            let victims = self.select_victims(st);
            if victims.len() < min_chunks {
                return Ok(None);
            }
            st.victim_queue = victims;
        }
        let mut stages = CompactionStages {
            workers: self.ingest_workers(),
            measure: t.elapsed(),
            ..CompactionStages::default()
        };

        // -- rebuild the queue in slices, each cutting over on its
        // own (single slice when no budget is configured) -------------
        let mut report = CompactionReport {
            before,
            ..CompactionReport::default()
        };
        while !st.victim_queue.is_empty() {
            let take = if slice_cap == 0 {
                st.victim_queue.len()
            } else {
                slice_cap.min(st.victim_queue.len())
            };
            let victims: Vec<u32> = st.victim_queue.drain(..take).collect();
            let Some(out) =
                self.compact_slice(st, victims, min_chunks, slice_cap == 0)?
            else {
                // The cutover guard rejected the slice: rebuilding it
                // would not improve the layout, so it is dropped, not
                // re-queued.
                continue;
            };
            report.victims += out.victims;
            report.new_chunks += out.new_chunks;
            report.records_moved += out.records_moved;
            report.subchunks_built += out.subchunks_built;
            report.bytes_rewritten += out.bytes_rewritten;
            report.bytes_reclaimed += out.bytes_reclaimed;
            report.keys_deleted += out.keys_deleted;
            report.reclamation_failed |= out.reclamation_failed;
            report.slices += 1;
            stages.absorb(&out.stages);
        }
        if report.slices == 0 {
            return Ok(None);
        }

        // Compaction is a natural self-healing point: the deletes just
        // purged any hints for retired keys, so replaying what remains
        // re-replicates only live data onto recovered nodes. Best
        // effort — a node still down keeps its hints queued.
        let _ = self.cluster.replay_hints();

        report.after = self.fragmentation_stats();
        report.stages = stages;
        report.total_time = t0.elapsed();
        st.last_compaction = Some(report);
        if self.obs.enabled() {
            let r = self.obs.registry();
            r.compactions.inc();
            r.compact_total.record_duration(report.total_time);
            r.compact_stages.record("measure", stages.measure);
            r.compact_stages.record("extract", stages.extract);
            r.compact_stages.record("partition", stages.partition);
            r.compact_stages.record("rebuild", stages.rebuild);
            r.compact_stages.record("index", stages.index);
            r.compact_stages.record("write", stages.write);
            r.compact_stages.record("modeled_write", stages.modeled_write);
            r.compact_stages.record("delete", stages.delete);
            r.compact_stages.record("modeled_delete", stages.modeled_delete);
        }
        Ok(Some(report))
    }

    /// Rebuilds one victim slice end to end: stage, guard, write the
    /// new generation, swap, persist + publish, reclaim. Returns
    /// `Ok(None)` when the cutover guard rejects the slice. On an
    /// error *before* the in-memory swap the slice's victims are
    /// pushed back to the head of the resumable queue; an error after
    /// the swap (metadata persist) is propagated without re-queueing —
    /// those victims are already retired in the writer state.
    fn compact_slice(
        &self,
        st: &mut StoreMut,
        victims: Vec<u32>,
        min_chunks: usize,
        allow_escalate: bool,
    ) -> Result<Option<SliceOutcome>, CoreError> {
        let workers = self.ingest_workers();
        let mut stages = CompactionStages {
            workers,
            ..CompactionStages::default()
        };
        let requeue = victims.clone();

        // Version ids still waiting in the delta store: their records
        // are not placed yet, and the rebuilt chunk maps must not
        // claim them — the next flush pushes them in order.
        let pending: FxHashSet<u32> = st.pending_version_ids();

        // -- extract + partition, staged: nothing is written yet ------
        let staged = (|| {
            let mut staged = self.stage_rebuild(st, victims, &pending)?;
            stages.extract += staged.extract;
            stages.partition += staged.partition;
            if !staged.improves() {
                if !allow_escalate {
                    return Ok(None);
                }
                // The sparse rebuild would regress; escalate to a full
                // repartition, which merges the kept chunks' records
                // back in and reproduces offline layout quality. The
                // victims are fetched a second time here — a
                // deliberate simplicity trade: with a configured cache
                // they are resident from the first pass, and
                // escalation is the rare path.
                let all: Vec<u32> = st.live_chunk_ids();
                if staged.victims.len() < all.len() && all.len() >= min_chunks {
                    staged = self.stage_rebuild(st, all, &pending)?;
                    stages.extract += staged.extract;
                    stages.partition += staged.partition;
                }
                if !staged.improves() {
                    return Ok(None);
                }
            }
            Ok(Some(staged))
        })();
        let staged = match staged {
            Ok(Some(staged)) => staged,
            Ok(None) => return Ok(None),
            Err(e) => {
                st.victim_queue.splice(0..0, requeue);
                return Err(e);
            }
        };
        let StagedRebuild {
            victims,
            victim_set,
            records,
            groups,
            subchunks,
            version_items,
            version_members,
            chunk_items,
            bytes_reclaimed,
            ..
        } = staged;
        let records_moved = records.len();
        let subchunks_built = subchunks.len();

        // -- rebuild: assemble the new generation into peeked id
        // slots (reclaimed free slots first, then fresh ids past the
        // tail — claimed only at the swap, so a failed write leaves
        // the writer state untouched) and stream the blobs while
        // later chunks encode ----------------------------------------
        let t = Instant::now();
        let ids = store::peek_chunk_ids(st, chunk_items.len());
        let mut subchunk_slots: Vec<Option<SubChunk>> =
            subchunks.into_iter().map(Some).collect();
        // Staged placement, applied to the writer state only after
        // the backend holds the new generation.
        let mut group_slot: Vec<(u32, u32)> = vec![(0, 0); groups.len()];
        let mut new_sizes: Vec<usize> = Vec::with_capacity(chunk_items.len());
        let mut new_counts: Vec<usize> = Vec::with_capacity(chunk_items.len());
        let mut chunks: Vec<Chunk> = Vec::with_capacity(chunk_items.len());
        for (ci, items) in chunk_items.iter().enumerate() {
            let chunk_id = ids[ci];
            let mut chunk = Chunk::new();
            let mut local = 0u32;
            for &g in items {
                group_slot[g as usize] = (chunk_id, local);
                let sc = subchunk_slots[g as usize].take().expect("group in one chunk");
                local += sc.members.len() as u32;
                chunk.subchunks.push(sc);
            }
            new_sizes.push(chunk.compressed_bytes());
            new_counts.push(local as usize);
            chunks.push(chunk);
        }
        let new_chunks = chunks.len();
        let jobs: Vec<(u32, Chunk)> = chunks
            .into_iter()
            .zip(ids.iter())
            .map(|(c, &id)| (id, c))
            .collect();
        let outcome = match store::stream_chunk_blobs(&self.cluster, workers, jobs) {
            Ok(outcome) => outcome,
            Err(e) => {
                st.victim_queue.splice(0..0, requeue);
                return Err(e);
            }
        };
        stages.rebuild = t.elapsed();
        stages.write += outcome.write_wait;
        stages.modeled_write += outcome.summary.modeled;
        let mut bytes_rewritten = outcome.summary.bytes;

        // Record ordinal → its new (chunk, local) slot.
        let mut rec_slot: Vec<(u32, u32)> = vec![(0, 0); records.len()];
        for (g, members) in groups.iter().enumerate() {
            let (chunk, first) = group_slot[g];
            for (offset, &i) in members.iter().enumerate() {
                rec_slot[i as usize] = (chunk, first + offset as u32);
            }
        }

        // -- index: rebuild the chunk maps for the new generation and
        // stream them through the same writer stage ------------------
        let t = Instant::now();
        let count_of: FxHashMap<u32, usize> = ids
            .iter()
            .zip(new_counts.iter())
            .map(|(&c, &n)| (c, n))
            .collect();
        // Every new chunk gets a map even if empty, so the recovery
        // scan never finds a blob without its other half.
        let mut per_chunk: FxHashMap<u32, Vec<(VersionId, Vec<usize>)>> = ids
            .iter()
            .map(|&c| (c, Vec::new()))
            .collect();
        let mut touched: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        for (v, members) in version_members.iter().enumerate() {
            for &i in members {
                let (chunk, local) = rec_slot[i as usize];
                touched.entry(chunk).or_default().push(local as usize);
            }
            for (chunk, mut locals) in touched.drain() {
                locals.sort_unstable();
                per_chunk
                    .get_mut(&chunk)
                    .expect("new chunk id")
                    .push((VersionId(v as u32), locals));
            }
        }
        // Same two-pass shape as the flush path's `index_versions`
        // (group per chunk with ascending versions + sorted locals,
        // then build each map on its own core and ride the streaming
        // writer) — but over fresh maps that only join the writer
        // state's `chunk_maps` at the swap, instead of in-place
        // `&mut` rewrites of resident maps.
        let mut map_jobs: Vec<RebuildMapJob> = per_chunk
            .into_iter()
            .map(|(c, work)| (c, count_of[&c], work))
            .collect();
        map_jobs.sort_unstable_by_key(|&(c, _, _)| c);
        let built: Vec<(u32, ChunkMap, Bytes)> =
            plan::parallel_map_owned(map_jobs, workers, |(c, n, work)| {
                let mut map = ChunkMap::new(n);
                for (v, locals) in work {
                    map.push_version(v, locals.iter().copied());
                }
                let bytes = Bytes::from(map.serialize());
                (c, map, bytes)
            });
        // Split the build output: serialized bytes move into the
        // write list (no copy), the maps themselves are adopted at
        // the swap below.
        let mut writes: Vec<(Key, Bytes)> = Vec::with_capacity(built.len());
        let mut adopted: Vec<(u32, ChunkMap)> = Vec::with_capacity(built.len());
        for (c, map, bytes) in built {
            writes.push((table_key(CMAP_TABLE, &ChunkId(c).to_key()), bytes));
            adopted.push((c, map));
        }
        let outcome = match store::stream_writes(&self.cluster, workers, writes) {
            Ok(outcome) => outcome,
            Err(e) => {
                st.victim_queue.splice(0..0, requeue);
                return Err(e);
            }
        };
        stages.index = t.elapsed();
        stages.write += outcome.write_wait;
        stages.modeled_write += outcome.summary.modeled;
        bytes_rewritten += outcome.summary.bytes;

        // -- swap: the new generation is durable; build the next
        // metadata generation in the writer state --------------------
        let claimed = store::claim_chunk_ids(st, chunk_items.len());
        debug_assert_eq!(claimed, ids);
        for (ci, &id) in ids.iter().enumerate() {
            let slot = id as usize;
            Arc::make_mut(&mut st.chunk_sizes)[slot] = new_sizes[ci];
            // Stamped one past the current generation: the publish
            // below increments to exactly this value, making it the
            // cache-probe floor for the rebuilt map.
            Arc::make_mut(&mut st.map_gen)[slot] = st.generation + 1;
        }
        for (c, map) in adopted {
            st.chunk_maps[c as usize] = map;
        }
        for (i, record) in records.iter().enumerate() {
            st.locator.insert(record.composite_key(), rec_slot[i]);
        }
        let projections = Arc::make_mut(&mut st.projections);
        projections.retain_chunks(|c| !victim_set.contains(&c));
        for (v, items) in version_items.iter().enumerate() {
            for &g in items {
                projections
                    .add_version_chunk(VersionId(v as u32), ChunkId(group_slot[g as usize].0));
            }
        }
        for (g, members) in groups.iter().enumerate() {
            let chunk = ChunkId(group_slot[g].0);
            for &i in members {
                projections.add_key_chunk(records[i as usize].pk, chunk);
            }
        }
        let retired = Arc::make_mut(&mut st.retired);
        for &c in &victims {
            retired.insert(c);
            Arc::make_mut(&mut st.chunk_sizes)[c as usize] = 0;
            st.chunk_maps[c as usize] = ChunkMap::default();
        }

        // -- commit point: persist the metadata, publish the new
        // generation to readers --------------------------------------
        let (meta_modeled, meta_wait) = self.persist_meta_locked(st)?;
        stages.modeled_write += meta_modeled;
        stages.write += meta_wait;
        self.publish(st);

        // -- reclaim (phase A): drop the retired generation's cache
        // entries and batch-delete its backend keys — immediately
        // when no reader pins an older generation, deferred onto the
        // resumable queue otherwise, so an in-flight pinned query can
        // still fetch the old keys it planned against ----------------
        let t = Instant::now();
        let publish_gen = st.generation;
        let keys: Vec<Key> = victims
            .iter()
            .flat_map(|&c| {
                [
                    table_key(CHUNK_TABLE, &ChunkId(c).to_key()),
                    table_key(CMAP_TABLE, &ChunkId(c).to_key()),
                ]
            })
            .collect();
        let (modeled_delete, keys_deleted, reclamation_failed) =
            if self.pins.oldest().is_some_and(|o| o < publish_gen) {
                st.deferred.push(DeferredReclaim {
                    publish_gen,
                    chunk_ids: victims.clone(),
                    keys,
                });
                (Duration::ZERO, 0, false)
            } else {
                // Stale decoded pairs of the retired generation
                // (including the ones the extraction fetch just
                // admitted) are unreachable through the rewritten
                // projections, but drop them anyway to free budget.
                for &c in &victims {
                    self.cache.invalidate(c);
                }
                // Past the commit point the compaction *is* durable —
                // a reclamation failure must not report it as failed.
                // Old keys a dying node kept behind are unreferenced
                // orphans (the persisted metadata no longer knows
                // their ids), so the error is contained in the report
                // rather than propagated.
                match self.cluster.multi_delete_scatter(keys) {
                    Ok((modeled, removed)) => (modeled, removed, false),
                    Err(_) => (Duration::ZERO, 0, true),
                }
            };
        stages.delete = t.elapsed();
        stages.modeled_delete = modeled_delete;

        Ok(Some(SliceOutcome {
            victims: victims.len(),
            new_chunks,
            records_moved,
            subchunks_built,
            bytes_rewritten,
            bytes_reclaimed,
            keys_deleted,
            reclamation_failed,
            stages,
        }))
    }

    /// Plans a rebuild of `victims` without touching the backend:
    /// fetches and extracts their records through the read pipeline,
    /// re-groups same-key records into sub-chunks, re-runs the
    /// configured partitioner, and evaluates the candidate layout's
    /// span contribution against the victims' current one.
    fn stage_rebuild(
        &self,
        st: &StoreMut,
        victims: Vec<u32>,
        pending: &FxHashSet<u32>,
    ) -> Result<StagedRebuild, CoreError> {
        // -- extract: fetch victims through plan → fetch → extract ----
        let t = Instant::now();
        let scan = self.plan_chunks(victims.clone())?;
        let fetched = self.execute(scan)?;
        let mut records: Vec<Record> = Vec::new();
        for dc in fetched.into_chunks() {
            records.extend(query::extract_all(&dc.chunk)?);
        }
        let extract = t.elapsed();

        let t = Instant::now();
        // Order same-key records by origin so each key's history is
        // contiguous, then cut groups of up to `k`: the compaction
        // counterpart of the §3.4 grouping (origin order approximates
        // version-tree connectivity — parents precede children).
        let workers = self.ingest_workers();
        let k = self.config.max_subchunk.max(1);
        let mut order: Vec<u32> = (0..records.len() as u32).collect();
        order.sort_unstable_by_key(|&i| {
            let r = &records[i as usize];
            (r.pk, r.origin)
        });
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for idx in order {
            match groups.last_mut() {
                Some(g)
                    if g.len() < k
                        && records[g[0] as usize].pk == records[idx as usize].pk =>
                {
                    g.push(idx)
                }
                _ => groups.push(vec![idx]),
            }
        }
        let subchunks: Vec<SubChunk> = plan::parallel_map(&groups, workers, |members| {
            let recs: Vec<(CompositeKey, &[u8])> = members
                .iter()
                .map(|&i| {
                    let r = &records[i as usize];
                    (r.composite_key(), r.payload.as_ref())
                })
                .collect();
            SubChunk::build(&recs)
        });

        // Membership per version: the moved records (by extraction
        // ordinal) and the distinct groups each flushed version
        // touches — the partitioner sees groups, the chunk-map
        // rebuild sees record ordinals.
        let mut ord_of: FxHashMap<CompositeKey, u32> = FxHashMap::default();
        for (i, r) in records.iter().enumerate() {
            ord_of.insert(r.composite_key(), i as u32);
        }
        let mut group_of_rec: Vec<u32> = vec![0; records.len()];
        for (g, members) in groups.iter().enumerate() {
            for &i in members {
                group_of_rec[i as usize] = g as u32;
            }
        }
        let num_versions = st.graph.len();
        let mut version_items: Vec<Vec<u32>> = vec![Vec::new(); num_versions];
        let mut version_members: Vec<Vec<u32>> = vec![Vec::new(); num_versions];
        let mut mark: Vec<u32> = vec![u32::MAX; groups.len()];
        for v in 0..num_versions {
            if pending.contains(&(v as u32)) {
                continue;
            }
            let mut items: Vec<u32> = Vec::new();
            let mut members: Vec<u32> = Vec::new();
            for &(pk, origin) in &st.contents[v] {
                let ck = CompositeKey::new(pk, origin);
                if let Some(&i) = ord_of.get(&ck) {
                    members.push(i);
                    let g = group_of_rec[i as usize];
                    if mark[g as usize] != v as u32 {
                        mark[g as usize] = v as u32;
                        items.push(g);
                    }
                }
            }
            items.sort_unstable();
            version_items[v] = items;
            version_members[v] = members;
        }
        let item_sizes: Vec<u32> = subchunks
            .iter()
            .map(|s| s.compressed_bytes() as u32)
            .collect();
        let item_pk: Vec<u64> = groups
            .iter()
            .map(|g| records[g[0] as usize].pk)
            .collect();
        let tree = st.graph.to_tree();
        let input = PartitionInput {
            tree: &tree,
            version_items: &version_items,
            item_sizes: &item_sizes,
            item_pk: &item_pk,
        };
        let partitioner = self.config.partitioner.build(self.config.chunk_capacity);
        let partitioning = partitioner.partition(&input);
        let partition = t.elapsed();

        // Span bookkeeping for the cutover guard: what the victims
        // contribute today vs. what the candidate layout would.
        let victim_set: FxHashSet<u32> = victims.iter().copied().collect();
        let mut old_span = 0usize;
        for v in 0..num_versions {
            old_span += st
                .projections
                .chunks_of_version(VersionId(v as u32))
                .iter()
                .filter(|c| victim_set.contains(c))
                .count();
        }
        let mut new_span = 0usize;
        let mut chunk_mark: Vec<u32> = vec![u32::MAX; partitioning.num_chunks];
        for (v, items) in version_items.iter().enumerate() {
            for &g in items {
                let c = partitioning.chunk_of[g as usize] as usize;
                if chunk_mark[c] != v as u32 {
                    chunk_mark[c] = v as u32;
                    new_span += 1;
                }
            }
        }
        let bytes_reclaimed = victims
            .iter()
            .map(|&c| st.chunk_sizes[c as usize])
            .sum();

        Ok(StagedRebuild {
            victims,
            victim_set,
            records,
            groups,
            subchunks,
            version_items,
            version_members,
            chunk_items: partitioning.chunk_items(),
            old_span,
            new_span,
            bytes_reclaimed,
            extract,
            partition,
        })
    }
}

/// What one cut-over slice moved and cost — folded into the run-wide
/// [`CompactionReport`] by the slice loop.
struct SliceOutcome {
    victims: usize,
    new_chunks: usize,
    records_moved: usize,
    subchunks_built: usize,
    bytes_rewritten: usize,
    bytes_reclaimed: usize,
    keys_deleted: usize,
    reclamation_failed: bool,
    stages: CompactionStages,
}

/// A fully planned rebuild that has not touched the backend: the
/// extracted records, their re-grouping, the candidate partitioning,
/// and the span comparison that decides whether it cuts over.
struct StagedRebuild {
    /// Victim chunk ids, ascending.
    victims: Vec<u32>,
    /// The same ids as a set.
    victim_set: FxHashSet<u32>,
    /// Records extracted from the victims, in extraction order.
    records: Vec<Record>,
    /// Sub-chunk groups of record ordinals (first member is the
    /// delta-encoding root).
    groups: Vec<Vec<u32>>,
    /// The rebuilt sub-chunks, aligned with `groups`.
    subchunks: Vec<SubChunk>,
    /// Distinct groups per flushed version (partitioner input).
    version_items: Vec<Vec<u32>>,
    /// Moved record ordinals per flushed version (chunk-map input).
    version_members: Vec<Vec<u32>>,
    /// Groups per candidate chunk, in candidate-chunk order.
    chunk_items: Vec<Vec<u32>>,
    /// Span the victims contribute under the current layout.
    old_span: usize,
    /// Span the candidate chunks would contribute.
    new_span: usize,
    /// Compressed chunk bytes the victims occupy.
    bytes_reclaimed: usize,
    /// Wall time of the extract stage.
    extract: Duration,
    /// Wall time of the grouping + partitioning stage.
    partition: Duration,
}

impl StagedRebuild {
    /// True when cutting over helps: the span contribution shrinks,
    /// or stays equal while the chunk count drops (better fill, same
    /// fan-out).
    fn improves(&self) -> bool {
        self.new_span < self.old_span
            || (self.new_span == self.old_span && self.chunk_items.len() < self.victims.len())
    }
}
