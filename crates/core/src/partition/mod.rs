//! Partitioning records into chunks (paper §2.5, §3).
//!
//! The computational core of RStore: given the version tree and the
//! version→items relation, assign items (records, or sub-chunks when
//! compression is on) to approximately fixed-size chunks so that
//! reconstructing versions touches few chunks. The general problem is
//! NP-hard (maximal-biclique enumeration + bin packing, §2.5); the
//! algorithms here are the paper's heuristics:
//!
//! * [`shingle::ShinglePartitioner`] — min-hash similarity ordering,
//! * [`bottom_up::BottomUpPartitioner`] — the version-tree-aware
//!   algorithm of §3.2 (the paper's best performer),
//! * [`traversal::TraversalPartitioner`] — greedy DFS/BFS of §3.3,
//! * [`baselines`] — SUBCHUNK, single-address-space and the DELTA
//!   chain layout used as comparison points throughout §5.

use rstore_vgraph::VersionGraph;

pub mod baselines;
pub mod bottom_up;
pub mod shingle;
pub mod traversal;

/// Everything a partitioner may look at.
///
/// `items` are the placement units: individual records when
/// record-level compression is off (`k = 1`), sub-chunks otherwise.
#[derive(Debug, Clone, Copy)]
pub struct PartitionInput<'a> {
    /// The version tree (no merges; convert DAGs first with
    /// [`VersionGraph::to_tree`]).
    pub tree: &'a VersionGraph,
    /// `version_items[v]` = sorted item ordinals present in version v.
    pub version_items: &'a [Vec<u32>],
    /// `item_sizes[i]` = stored (compressed) size of item i in bytes.
    pub item_sizes: &'a [u32],
    /// `item_pk[i]` = primary key of item i (used by the SUBCHUNK
    /// baseline; version-tree algorithms ignore it).
    pub item_pk: &'a [u64],
}

impl PartitionInput<'_> {
    /// Number of items to place.
    pub fn num_items(&self) -> usize {
        self.item_sizes.len()
    }

    /// Inverts the version→items relation.
    pub fn item_versions(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_items()];
        for (v, items) in self.version_items.iter().enumerate() {
            for &i in items {
                out[i as usize].push(v as u32);
            }
        }
        out
    }
}

/// The result: which chunk each item landed in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Partitioning {
    /// `chunk_of[item]` = chunk index.
    pub chunk_of: Vec<u32>,
    /// Number of chunks produced.
    pub num_chunks: usize,
}

impl Partitioning {
    /// Items of each chunk, in item order.
    pub fn chunk_items(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_chunks];
        for (item, &c) in self.chunk_of.iter().enumerate() {
            out[c as usize].push(item as u32);
        }
        out
    }

    /// Checks the fixed-chunk-size invariant (§2.5): every item is
    /// assigned, and every chunk holds at most `capacity × (1+slack)`
    /// bytes unless it contains a single oversized item.
    pub fn validate(&self, sizes: &[u32], capacity: usize, slack: f64) -> Result<(), String> {
        if self.chunk_of.len() != sizes.len() {
            return Err(format!(
                "{} assignments for {} items",
                self.chunk_of.len(),
                sizes.len()
            ));
        }
        let limit = (capacity as f64 * (1.0 + slack)) as usize;
        let mut chunk_bytes = vec![0usize; self.num_chunks];
        let mut chunk_count = vec![0usize; self.num_chunks];
        for (item, &c) in self.chunk_of.iter().enumerate() {
            let c = c as usize;
            if c >= self.num_chunks {
                return Err(format!("item {item} assigned to unknown chunk {c}"));
            }
            chunk_bytes[c] += sizes[item] as usize;
            chunk_count[c] += 1;
        }
        for (c, (&bytes, &count)) in chunk_bytes.iter().zip(&chunk_count).enumerate() {
            if count == 0 {
                return Err(format!("chunk {c} is empty"));
            }
            if bytes > limit && count > 1 {
                return Err(format!(
                    "chunk {c} holds {bytes} bytes > limit {limit} with {count} items"
                ));
            }
        }
        Ok(())
    }
}

/// A partitioning algorithm.
pub trait Partitioner {
    /// Assigns every item to a chunk.
    fn partition(&self, input: &PartitionInput<'_>) -> Partitioning;

    /// Short name for reports ("BOTTOM-UP", "SHINGLE", ...).
    fn name(&self) -> &'static str;
}

/// Selects and configures a partitioning algorithm; the chunk
/// capacity comes from the store configuration at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerKind {
    /// Min-hash shingle ordering (§3.1).
    Shingle {
        /// Number of hash functions `l`.
        num_hashes: usize,
    },
    /// Bottom-up version-tree traversal (§3.2).
    BottomUp {
        /// Subtree size limit β (`usize::MAX` = unbounded).
        beta: usize,
    },
    /// Greedy depth-first traversal (§3.3).
    DepthFirst,
    /// Greedy breadth-first traversal (§3.3).
    BreadthFirst,
    /// SUBCHUNK baseline: group all items of a primary key (§2.2).
    SubchunkBaseline,
    /// Single-address-space baseline: one item per chunk (§2.2).
    SingleAddress,
}

impl PartitionerKind {
    /// Instantiates the partitioner packing chunks of `capacity`
    /// bytes (baselines ignore the capacity).
    pub fn build(&self, capacity: usize) -> Box<dyn Partitioner + Send + Sync> {
        match *self {
            PartitionerKind::Shingle { num_hashes } => {
                Box::new(shingle::ShinglePartitioner::new(num_hashes, capacity))
            }
            PartitionerKind::BottomUp { beta } => {
                Box::new(bottom_up::BottomUpPartitioner::new(beta, capacity))
            }
            PartitionerKind::DepthFirst => {
                Box::new(traversal::TraversalPartitioner::depth_first(capacity))
            }
            PartitionerKind::BreadthFirst => {
                Box::new(traversal::TraversalPartitioner::breadth_first(capacity))
            }
            PartitionerKind::SubchunkBaseline => Box::new(baselines::SubchunkBaseline),
            PartitionerKind::SingleAddress => Box::new(baselines::SingleAddressBaseline),
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match *self {
            PartitionerKind::Shingle { .. } => "SHINGLE",
            PartitionerKind::BottomUp { .. } => "BOTTOM-UP",
            PartitionerKind::DepthFirst => "DEPTHFIRST",
            PartitionerKind::BreadthFirst => "BREADTHFIRST",
            PartitionerKind::SubchunkBaseline => "SUBCHUNK",
            PartitionerKind::SingleAddress => "SINGLE-ADDRESS",
        }
    }
}

/// Shared greedy packer enforcing the fixed-chunk-size assumption:
/// chunks target `capacity` bytes with up to `slack` (default 25%)
/// overflow allowed to keep groups of highly-common items together.
#[derive(Debug)]
pub struct ChunkPacker {
    capacity: usize,
    limit: usize,
    chunk_of: Vec<u32>,
    num_chunks: u32,
    cur_bytes: usize,
    cur_items: usize,
}

impl ChunkPacker {
    /// Default allowed overflow fraction (paper §2.5).
    pub const DEFAULT_SLACK: f64 = 0.25;

    /// Creates a packer for `num_items` items.
    pub fn new(num_items: usize, capacity: usize) -> Self {
        Self::with_slack(num_items, capacity, Self::DEFAULT_SLACK)
    }

    /// Creates a packer with a custom slack fraction.
    pub fn with_slack(num_items: usize, capacity: usize, slack: f64) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            limit: ((capacity as f64) * (1.0 + slack)) as usize,
            chunk_of: vec![u32::MAX; num_items],
            num_chunks: 0,
            cur_bytes: 0,
            cur_items: 0,
        }
    }

    fn open_chunk(&mut self) {
        self.num_chunks += 1;
        self.cur_bytes = 0;
        self.cur_items = 0;
    }

    /// Places one item, closing the current chunk at the capacity
    /// boundary.
    pub fn add_item(&mut self, item: u32, size: u32) {
        if self.num_chunks == 0 || (self.cur_bytes + size as usize > self.capacity && self.cur_items > 0)
        {
            self.open_chunk();
        }
        self.chunk_of[item as usize] = self.num_chunks - 1;
        self.cur_bytes += size as usize;
        self.cur_items += 1;
    }

    /// Places a group of items that should stay together: the whole
    /// group goes into the current chunk if it fits within the slack
    /// limit, otherwise into a fresh chunk. Groups larger than a whole
    /// chunk spill over chunk boundaries item by item.
    pub fn add_group(&mut self, items: &[u32], sizes: &[u32]) {
        let group_bytes: usize = items.iter().map(|&i| sizes[i as usize] as usize).sum();
        if group_bytes > self.limit {
            for &i in items {
                self.add_item(i, sizes[i as usize]);
            }
            return;
        }
        let overflows = self.cur_bytes + group_bytes > self.limit && self.cur_items > 0;
        if self.num_chunks == 0 || overflows {
            self.open_chunk();
        }
        for &i in items {
            self.chunk_of[i as usize] = self.num_chunks - 1;
        }
        self.cur_bytes += group_bytes;
        self.cur_items += items.len();
    }

    /// Finishes packing.
    ///
    /// # Panics
    /// Panics if any item was never added.
    pub fn finish(self) -> Partitioning {
        assert!(
            self.chunk_of.iter().all(|&c| c != u32::MAX),
            "packer finished with unassigned items"
        );
        Partitioning {
            chunk_of: self.chunk_of,
            num_chunks: self.num_chunks as usize,
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Helpers shared by partitioner tests.

    use super::*;
    use rstore_vgraph::{DatasetSpec, MaterializedVersions, RecordStore, VersionId};

    /// Builds a [`PartitionInput`]-backing bundle from a tiny dataset.
    pub(crate) struct InputBundle {
        pub tree: VersionGraph,
        pub version_items: Vec<Vec<u32>>,
        pub item_sizes: Vec<u32>,
        pub item_pk: Vec<u64>,
    }

    impl InputBundle {
        pub(crate) fn input(&self) -> PartitionInput<'_> {
            PartitionInput {
                tree: &self.tree,
                version_items: &self.version_items,
                item_sizes: &self.item_sizes,
                item_pk: &self.item_pk,
            }
        }
    }

    pub(crate) fn from_spec(spec: &DatasetSpec) -> InputBundle {
        let ds = spec.generate();
        let store = RecordStore::from_deltas(&ds.deltas);
        let m = MaterializedVersions::build(&ds.graph, &ds.deltas, &store);
        let version_items: Vec<Vec<u32>> = (0..ds.graph.len())
            .map(|v| {
                let mut items: Vec<u32> = m
                    .contents(VersionId(v as u32))
                    .iter()
                    .map(|&(_, ord)| ord)
                    .collect();
                items.sort_unstable();
                items
            })
            .collect();
        let item_sizes: Vec<u32> = (0..store.len() as u32)
            .map(|o| store.payload(o).len() as u32)
            .collect();
        let item_pk: Vec<u64> = store.keys().iter().map(|ck| ck.pk).collect();
        InputBundle {
            tree: ds.graph.clone(),
            version_items,
            item_sizes,
            item_pk,
        }
    }

    /// Total version span of a partitioning: Σ_v |{chunks of v}|.
    pub(crate) fn total_span(input: &PartitionInput<'_>, p: &Partitioning) -> usize {
        let mut span = 0;
        let mut seen = vec![u32::MAX; p.num_chunks];
        for (v, items) in input.version_items.iter().enumerate() {
            for &i in items {
                let c = p.chunk_of[i as usize] as usize;
                if seen[c] != v as u32 {
                    seen[c] = v as u32;
                    span += 1;
                }
            }
        }
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packer_respects_capacity() {
        let mut p = ChunkPacker::new(10, 100);
        for i in 0..10 {
            p.add_item(i, 30);
        }
        let out = p.finish();
        // 3 items of 30 fit under 100; 10 items → 4 chunks.
        assert_eq!(out.num_chunks, 4);
        out.validate(&[30; 10], 100, 0.25).unwrap();
    }

    #[test]
    fn packer_keeps_groups_together_within_slack() {
        let sizes = [90u32, 10, 10, 10, 10, 10];
        let mut p = ChunkPacker::new(6, 100);
        p.add_item(0, 90);
        // Group of 3 × 10 = 30: 90+30 = 120 ≤ 125 limit → joins via slack.
        p.add_group(&[1, 2, 3], &sizes);
        // Group of 2 × 10 = 20: 120+20 = 140 > 125 → fresh chunk.
        p.add_group(&[4, 5], &sizes);
        let out = p.finish();
        assert_eq!(out.chunk_of[0], out.chunk_of[1]);
        assert_eq!(out.chunk_of[1], out.chunk_of[2]);
        assert_eq!(out.chunk_of[2], out.chunk_of[3]);
        assert_ne!(out.chunk_of[4], out.chunk_of[0], "second group opens new chunk");
        assert_eq!(out.chunk_of[4], out.chunk_of[5]);
        assert_eq!(out.num_chunks, 2);
    }

    #[test]
    fn packer_uses_slack_to_finish_group() {
        let mut p = ChunkPacker::new(3, 100);
        p.add_item(0, 80);
        // 40-byte group: 80+40 = 120 ≤ 125 → stays in the same chunk.
        p.add_group(&[1, 2], &[80, 20, 20]);
        let out = p.finish();
        assert_eq!(out.num_chunks, 1);
    }

    #[test]
    fn oversized_item_gets_own_chunk() {
        let mut p = ChunkPacker::new(3, 100);
        p.add_item(0, 10);
        p.add_item(1, 500);
        p.add_item(2, 10);
        let out = p.finish();
        out.validate(&[10, 500, 10], 100, 0.25).unwrap();
        assert_eq!(out.num_chunks, 3);
    }

    #[test]
    fn oversized_group_spills() {
        let mut p = ChunkPacker::new(5, 100);
        p.add_group(&[0, 1, 2, 3, 4], &[60; 5]);
        let out = p.finish();
        assert!(out.num_chunks >= 3);
        out.validate(&[60; 5], 100, 0.25).unwrap();
    }

    #[test]
    #[should_panic(expected = "unassigned items")]
    fn unassigned_items_panic() {
        let p = ChunkPacker::new(2, 100);
        let _ = p.finish();
    }

    #[test]
    fn validate_catches_empty_and_oversize() {
        let bad = Partitioning {
            chunk_of: vec![0, 0],
            num_chunks: 3,
        };
        assert!(bad.validate(&[1, 1], 10, 0.25).is_err());
        let oversize = Partitioning {
            chunk_of: vec![0, 0],
            num_chunks: 1,
        };
        assert!(oversize.validate(&[100, 100], 10, 0.25).is_err());
    }
}
