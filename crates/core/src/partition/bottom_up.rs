//! BOTTOM-UP partitioning — paper §3.2, Algorithm 3.
//!
//! Process the version tree in post-order (leaves first). Every
//! version `v` hands its parent a collection π_v of item sets grouped
//! by *survival run*: how many consecutive descendant versions
//! (starting at `v`) the item appears in. When the parent `p` is
//! processed, items from a child's π that are **absent from `p`** have
//! "died" — they appear in no version above — so they can be chunked
//! immediately (the ψ sets of the paper). Groups are emitted deepest
//! run first: "records in α^p must be chunked first, followed by
//! α^{p-1}", keeping records common to many consecutive versions
//! together and out of chunks holding short-lived records.
//!
//! For versions with multiple children the run scores of items present
//! in several children are summed, per the paper's general-tree rule
//! ("assign a count based on the number of consecutive versions it
//! belongs to. The count is added for records that appear in multiple
//! sets"). Items dead below `p` are necessarily exclusive to a single
//! child branch, so dead groups never overlap (the Lemma 1 property).
//!
//! The subtree limit β (§3.2.1) caps how many run-groups a version
//! may hand to its parent; the smallest groups are merged into their
//! neighbours first, trading partitioning quality for processing
//! cost — exactly the Fig. 9 trade-off.

use super::{ChunkPacker, PartitionInput, Partitioner, Partitioning};
use rustc_hash::FxHashMap;

/// One run-group inside a π collection.
#[derive(Debug, Clone)]
struct Group {
    /// Survival-run score (≥ 1).
    run: u64,
    /// Sorted item ordinals.
    items: Vec<u32>,
}

/// The BOTTOM-UP partitioner.
#[derive(Debug, Clone)]
pub struct BottomUpPartitioner {
    beta: usize,
    capacity: usize,
}

impl BottomUpPartitioner {
    /// Creates the partitioner with subtree limit `beta` (use
    /// `usize::MAX` for the unbounded variant) and chunk `capacity`
    /// in bytes.
    pub fn new(beta: usize, capacity: usize) -> Self {
        Self {
            beta: beta.max(1),
            capacity,
        }
    }
}

impl Partitioner for BottomUpPartitioner {
    fn partition(&self, input: &PartitionInput<'_>) -> Partitioning {
        let n = input.num_items();
        // π_v for processed-but-unconsumed versions.
        let mut pi: Vec<Option<Vec<Group>>> = vec![None; input.tree.len()];
        // Scratch: per-item run score accumulated from children,
        // epoch-tagged to avoid clearing between versions.
        let mut score = vec![0u64; n];
        let mut epoch = vec![u32::MAX; n];
        let mut placed = vec![false; n];
        // ψ emissions, in traversal order: (run, order, items).
        let mut emissions: Vec<(u64, u32, Vec<u32>)> = Vec::new();
        let mut emit_order = 0u32;
        let mut emit = |placed: &mut [bool], run: u64, items: &[u32], order: &mut u32| {
            let fresh: Vec<u32> = items
                .iter()
                .copied()
                .filter(|&i| !placed[i as usize])
                .collect();
            if fresh.is_empty() {
                return;
            }
            for &i in &fresh {
                placed[i as usize] = true;
            }
            emissions.push((run, *order, fresh));
            *order += 1;
        };

        for v in input.tree.post_order() {
            let vi = v.index();
            let s_v = &input.version_items[vi];
            let this_epoch = vi as u32;

            // Fold children's π collections into live scores and dead
            // emissions.
            let mut dead_groups: Vec<Group> = Vec::new();
            let node = input.tree.node(v);
            for &child in &node.children {
                let child_groups = pi[child.index()].take().expect("post-order");
                for g in child_groups {
                    let mut dead: Vec<u32> = Vec::new();
                    // Merge-walk g.items against s_v (both sorted).
                    let mut k = 0usize;
                    for &item in &g.items {
                        while k < s_v.len() && s_v[k] < item {
                            k += 1;
                        }
                        if k < s_v.len() && s_v[k] == item {
                            // Live in v: accumulate the run score.
                            let iu = item as usize;
                            if epoch[iu] != this_epoch {
                                epoch[iu] = this_epoch;
                                score[iu] = 0;
                            }
                            score[iu] += g.run;
                        } else {
                            dead.push(item);
                        }
                    }
                    if !dead.is_empty() {
                        dead_groups.push(Group {
                            run: g.run,
                            items: dead,
                        });
                    }
                }
            }

            // ψ_v: emit dead items, deepest survival runs first.
            dead_groups.sort_by_key(|g| std::cmp::Reverse(g.run));
            for g in &dead_groups {
                emit(&mut placed, g.run, &g.items, &mut emit_order);
            }

            // π_v: group v's items by 1 + accumulated child score.
            let mut by_run: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            for &item in s_v {
                let iu = item as usize;
                let child_score = if epoch[iu] == this_epoch { score[iu] } else { 0 };
                by_run.entry(1 + child_score).or_default().push(item);
            }
            let mut groups: Vec<Group> = by_run
                .into_iter()
                .map(|(run, items)| Group { run, items })
                .collect();
            groups.sort_by_key(|g| g.run);
            merge_to_beta(&mut groups, self.beta);
            pi[vi] = Some(groups);
        }

        // The root's π never meets a parent: everything still alive at
        // the root is emitted now, deepest runs first.
        if let Some(mut root_groups) = pi
            .get_mut(rstore_vgraph::VersionId::ROOT.index())
            .and_then(Option::take)
        {
            root_groups.sort_by_key(|g| std::cmp::Reverse(g.run));
            for g in &root_groups {
                emit(&mut placed, g.run, &g.items, &mut emit_order);
            }
        }
        // `emit` borrows `emissions`; end the borrow before packing.
        #[allow(clippy::drop_non_drop)]
        std::mem::drop(emit);

        // Final packing — the paper's "partial chunks ... are merged
        // at the end": groups with equal survival runs are chunked
        // together across versions (per §3.2's general-tree rule), so
        // long-lived records from different parts of the tree share
        // chunks instead of each dragging a per-version partial chunk.
        // Within a run, traversal order keeps temporal neighbours
        // adjacent.
        let bucket = |run: u64| 63 - run.max(1).leading_zeros();
        emissions.sort_by(|a, b| bucket(b.0).cmp(&bucket(a.0)).then(a.1.cmp(&b.1)));
        let mut packer = ChunkPacker::new(n, self.capacity);
        for (_, _, items) in &emissions {
            packer.add_group(items, input.item_sizes);
        }
        // Safety net for items in no version at all.
        for (item, was_placed) in placed.iter().enumerate() {
            if !was_placed {
                packer.add_item(item as u32, input.item_sizes[item]);
            }
        }
        packer.finish()
    }

    fn name(&self) -> &'static str {
        "BOTTOM-UP"
    }
}

/// Reduces a π collection to at most `beta` groups by repeatedly
/// merging the smallest group into its neighbour with the next-smaller
/// run (§3.2.1). Groups stay sorted by run ascending.
fn merge_to_beta(groups: &mut Vec<Group>, beta: usize) {
    while groups.len() > beta {
        // Find the smallest group by item count.
        let (idx, _) = groups
            .iter()
            .enumerate()
            .min_by_key(|(_, g)| g.items.len())
            .expect("non-empty");
        let g = groups.remove(idx);
        // Merge into the neighbour below (next-smaller run); the first
        // group merges upward instead.
        let target = if idx > 0 { idx - 1 } else { 0 };
        let t = &mut groups[target];
        let mut merged = Vec::with_capacity(t.items.len() + g.items.len());
        let (mut i, mut j) = (0, 0);
        while i < t.items.len() || j < g.items.len() {
            match (t.items.get(i), g.items.get(j)) {
                (Some(&a), Some(&b)) if a <= b => {
                    merged.push(a);
                    i += 1;
                }
                (Some(_), Some(&b)) => {
                    merged.push(b);
                    j += 1;
                }
                (Some(&a), None) => {
                    merged.push(a);
                    i += 1;
                }
                (None, Some(&b)) => {
                    merged.push(b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        t.items = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::testutil;
    use crate::partition::traversal::TraversalPartitioner;
    use rstore_vgraph::{DatasetSpec, VersionGraph};

    #[test]
    fn valid_on_random_datasets() {
        for seed in [1, 2, 3] {
            let bundle = testutil::from_spec(&DatasetSpec::tiny(seed));
            let out = BottomUpPartitioner::new(usize::MAX, 512).partition(&bundle.input());
            out.validate(&bundle.item_sizes, 512, 0.25).unwrap();
        }
    }

    #[test]
    fn valid_on_chains() {
        let bundle = testutil::from_spec(&DatasetSpec::tiny_chain(4));
        let out = BottomUpPartitioner::new(usize::MAX, 512).partition(&bundle.input());
        out.validate(&bundle.item_sizes, 512, 0.25).unwrap();
    }

    #[test]
    fn groups_long_runs_together_on_chain() {
        // Chain V0→V1→V2→V3. Item 0 lives in all versions; items 1..3
        // die quickly. The long-run item must not share a chunk with
        // the one-version items when capacity forces a split.
        let mut tree = VersionGraph::new();
        let v0 = tree.add_root();
        let v1 = tree.add_version(&[v0]);
        let v2 = tree.add_version(&[v1]);
        let _v3 = tree.add_version(&[v2]);
        let version_items: Vec<Vec<u32>> = vec![
            vec![0, 1],       // V0: long-runner + V0-only item
            vec![0, 2],       // V1
            vec![0, 3],       // V2
            vec![0],          // V3
        ];
        let sizes = vec![10u32; 4];
        let pks = vec![0u64; 4];
        let input = PartitionInput {
            tree: &tree,
            version_items: &version_items,
            item_sizes: &sizes,
            item_pk: &pks,
        };
        let out = BottomUpPartitioner::new(usize::MAX, 20).partition(&input);
        out.validate(&sizes, 20, 0.25).unwrap();
        // Item 0 survives to the root with run 4; items 1,2,3 die along
        // the way. Short-lived items share chunks among themselves.
        let short_chunks: Vec<u32> = [1u32, 2, 3].iter().map(|&i| out.chunk_of[i as usize]).collect();
        assert!(
            short_chunks.iter().filter(|&&c| c == out.chunk_of[0]).count() <= 1,
            "long-run item shares its chunk with short-lived ones: {out:?}"
        );
    }

    #[test]
    fn beats_or_matches_traversals_on_branched_data() {
        let mut bu_total = 0usize;
        let mut dfs_total = 0usize;
        for seed in 0..6 {
            let mut spec = DatasetSpec::tiny(300 + seed);
            spec.num_versions = 80;
            spec.branch_prob = 0.25;
            let bundle = testutil::from_spec(&spec);
            let input = bundle.input();
            let bu = BottomUpPartitioner::new(usize::MAX, 1024).partition(&input);
            let dfs = TraversalPartitioner::depth_first(1024).partition(&input);
            bu_total += testutil::total_span(&input, &bu);
            dfs_total += testutil::total_span(&input, &dfs);
        }
        // The paper's headline: BOTTOM-UP performs uniformly well.
        // Allow a small tolerance, but it must not lose badly.
        assert!(
            bu_total as f64 <= dfs_total as f64 * 1.1,
            "BOTTOM-UP span {bu_total} much worse than DFS {dfs_total}"
        );
    }

    #[test]
    fn beta_one_still_valid() {
        let bundle = testutil::from_spec(&DatasetSpec::tiny(5));
        let out = BottomUpPartitioner::new(1, 512).partition(&bundle.input());
        out.validate(&bundle.item_sizes, 512, 0.25).unwrap();
    }

    #[test]
    fn smaller_beta_does_not_improve_span_on_average() {
        // β=1 collapses all run-length ordering information. On any
        // single tiny dataset it may win by luck; aggregated over
        // several seeds the unbounded variant must be at least as
        // good (the Fig. 9 trend).
        let mut full_total = 0usize;
        let mut tiny_total = 0usize;
        for seed in 0..8 {
            let mut spec = DatasetSpec::tiny(600 + seed);
            spec.num_versions = 60;
            spec.branch_prob = 0.15;
            let bundle = testutil::from_spec(&spec);
            let input = bundle.input();
            full_total += testutil::total_span(
                &input,
                &BottomUpPartitioner::new(usize::MAX, 512).partition(&input),
            );
            tiny_total += testutil::total_span(
                &input,
                &BottomUpPartitioner::new(1, 512).partition(&input),
            );
        }
        assert!(
            tiny_total as f64 >= full_total as f64 * 0.95,
            "β=1 aggregate span {tiny_total} unexpectedly better than unbounded {full_total}"
        );
    }

    #[test]
    fn deterministic() {
        let bundle = testutil::from_spec(&DatasetSpec::tiny(7));
        let a = BottomUpPartitioner::new(8, 256).partition(&bundle.input());
        let b = BottomUpPartitioner::new(8, 256).partition(&bundle.input());
        assert_eq!(a, b);
    }

    #[test]
    fn merge_to_beta_respects_limit_and_items() {
        let mut groups = vec![
            Group { run: 1, items: vec![1, 5] },
            Group { run: 2, items: vec![2] },
            Group { run: 3, items: vec![3, 4, 6] },
        ];
        merge_to_beta(&mut groups, 2);
        assert_eq!(groups.len(), 2);
        let total: usize = groups.iter().map(|g| g.items.len()).sum();
        assert_eq!(total, 6, "merging must not lose items");
        for g in &groups {
            assert!(g.items.windows(2).all(|w| w[0] < w[1]), "sorted");
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(BottomUpPartitioner::new(1, 1).name(), "BOTTOM-UP");
    }
}
