//! Baseline layouts from paper §2.2 and Table 1.
//!
//! * [`SubchunkBaseline`] — group **all** records with the same
//!   primary key into one chunk ("sub-chunk approach"). Best storage
//!   and record-evolution performance; version retrieval must touch
//!   essentially every chunk.
//! * [`SingleAddressBaseline`] — store every record separately under
//!   its composite key ("single address space"). Ideal ingest, no
//!   compression, and maximal query counts.
//! * [`DeltaLayout`] — the git-style delta-chain engine: each
//!   version's delta is serialized and packed into chunks in version
//!   order; reconstructing a version retrieves the delta chunks of its
//!   entire root path. This is the DELTA comparator of Figs. 8 & 11.

use super::{PartitionInput, Partitioner, Partitioning};
use crate::error::CoreError;
use bytes::Bytes;
use rstore_compress::varint;
use rstore_kvstore::{table_key, Cluster};
use rstore_vgraph::{Dataset, PrimaryKey, VersionId};
use rustc_hash::FxHashMap;

/// The SUBCHUNK baseline: one chunk per primary key.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubchunkBaseline;

impl Partitioner for SubchunkBaseline {
    fn partition(&self, input: &PartitionInput<'_>) -> Partitioning {
        let mut chunk_of_pk: FxHashMap<u64, u32> = FxHashMap::default();
        let mut chunk_of = Vec::with_capacity(input.num_items());
        let mut next = 0u32;
        for &pk in input.item_pk {
            let c = *chunk_of_pk.entry(pk).or_insert_with(|| {
                let c = next;
                next += 1;
                c
            });
            chunk_of.push(c);
        }
        Partitioning {
            chunk_of,
            num_chunks: next as usize,
        }
    }

    fn name(&self) -> &'static str {
        "SUBCHUNK"
    }
}

/// The single-address-space baseline: one chunk per record.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleAddressBaseline;

impl Partitioner for SingleAddressBaseline {
    fn partition(&self, input: &PartitionInput<'_>) -> Partitioning {
        let n = input.num_items();
        Partitioning {
            chunk_of: (0..n as u32).collect(),
            num_chunks: n,
        }
    }

    fn name(&self) -> &'static str {
        "SINGLE-ADDRESS"
    }
}

/// The DELTA chain layout.
///
/// Not a [`Partitioner`]: deltas, not records, are the stored unit,
/// so it does not fit the item→chunk assignment model. It exposes the
/// same span metrics so the experiment harnesses can compare it.
#[derive(Debug, Clone)]
pub struct DeltaLayout {
    /// `chunks_of_version[v]` = chunk ids holding v's own delta.
    delta_chunks: Vec<Vec<u32>>,
    /// Serialized delta size per version.
    delta_bytes: Vec<usize>,
    num_chunks: usize,
}

impl DeltaLayout {
    /// Packs each version's serialized delta into `capacity`-byte
    /// chunks, in version order (deltas stay contiguous).
    pub fn build(dataset: &Dataset, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let n = dataset.graph.len();
        let mut delta_chunks = vec![Vec::new(); n];
        let mut delta_bytes = vec![0usize; n];
        let mut chunk = 0u32;
        let mut used = 0usize;
        for v in 0..n {
            let d = &dataset.deltas[v];
            // Serialized size: added payloads + 12 bytes per composite
            // key touched (both ∆⁺ and ∆⁻ entries carry keys).
            let size = d.added_bytes() + 12 * d.change_count();
            delta_bytes[v] = size;
            let mut remaining = size.max(1);
            loop {
                if used >= capacity {
                    chunk += 1;
                    used = 0;
                }
                delta_chunks[v].push(chunk);
                let take = remaining.min(capacity - used);
                used += take;
                remaining -= take;
                if remaining == 0 {
                    break;
                }
            }
        }
        Self {
            delta_chunks,
            delta_bytes,
            num_chunks: chunk as usize + 1,
        }
    }

    /// Chunks retrieved to reconstruct `v`: the union of delta chunks
    /// along the root path (the paper's "all the requisite deltas must
    /// be retrieved one-by-one").
    pub fn version_span(&self, dataset: &Dataset, v: VersionId) -> usize {
        let mut chunks: Vec<u32> = dataset
            .graph
            .path_from_root(v)
            .into_iter()
            .flat_map(|a| self.delta_chunks[a.index()].iter().copied())
            .collect();
        chunks.sort_unstable();
        chunks.dedup();
        chunks.len()
    }

    /// Bytes retrieved to reconstruct `v` (sum of path delta sizes).
    pub fn version_bytes(&self, dataset: &Dataset, v: VersionId) -> usize {
        dataset
            .graph
            .path_from_root(v)
            .into_iter()
            .map(|a| self.delta_bytes[a.index()])
            .sum()
    }

    /// Σ_v span(v): the Fig. 8 DELTA series.
    pub fn total_version_span(&self, dataset: &Dataset) -> usize {
        dataset
            .graph
            .ids()
            .map(|v| self.version_span(dataset, v))
            .sum()
    }

    /// Number of chunks used (storage proxy, §2.5).
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }
}

/// A working DELTA storage engine over the key-value cluster: each
/// version's delta is serialized under its own key ("all the
/// requisite deltas must be retrieved one-by-one", §2.3), and a
/// version is reconstructed by fetching its root path and applying
/// the deltas in order. This is the DELTA comparator measured in
/// Fig. 11; range queries reconstruct the full version first and then
/// filter, matching the paper's observation that Q2 > Q1 for DELTA.
pub struct DeltaEngine<'a> {
    dataset: &'a Dataset,
}

/// Backend table used by [`DeltaEngine`].
pub const DELTA_ENGINE_TABLE: &str = "delta-engine";

/// Result of a DELTA-engine retrieval.
#[derive(Debug)]
pub struct DeltaQueryResult {
    /// `(pk, payload)` pairs sorted by key.
    pub records: Vec<(PrimaryKey, Vec<u8>)>,
    /// Backend values fetched (the DELTA span).
    pub span: usize,
    /// Modeled network time of the slowest node batch — the same
    /// max-over-parallel-batches accounting `QueryStats` uses, so
    /// DELTA and RStore rows stay comparable in Fig. 11.
    pub modeled_network: std::time::Duration,
}

impl<'a> DeltaEngine<'a> {
    /// Serializes every delta of `dataset` into `cluster`.
    pub fn load(dataset: &'a Dataset, cluster: &Cluster) -> Result<Self, CoreError> {
        let mut writes = Vec::with_capacity(dataset.graph.len());
        for node in dataset.graph.nodes() {
            let delta = &dataset.deltas[node.id.index()];
            let mut buf = Vec::new();
            varint::write_u64(&mut buf, delta.added.len() as u64);
            for rec in &delta.added {
                buf.extend_from_slice(&rec.composite_key().to_bytes());
                varint::write_u64(&mut buf, rec.payload.len() as u64);
                buf.extend_from_slice(&rec.payload);
            }
            varint::write_u64(&mut buf, delta.removed.len() as u64);
            for ck in &delta.removed {
                buf.extend_from_slice(&ck.to_bytes());
            }
            writes.push((
                table_key(DELTA_ENGINE_TABLE, &node.id.as_u32().to_be_bytes()),
                Bytes::from(buf),
            ));
        }
        cluster.multi_put(writes)?;
        Ok(Self { dataset })
    }

    /// Reconstructs version `v` by fetching and applying the root
    /// path's deltas. Returns `(pk, payload)` pairs sorted by key and
    /// the number of backend values fetched (the DELTA span).
    pub fn get_version(
        &self,
        cluster: &Cluster,
        v: VersionId,
    ) -> Result<DeltaQueryResult, CoreError> {
        let path = self.dataset.graph.path_from_root(v);
        let keys: Vec<Vec<u8>> = path
            .iter()
            .map(|a| table_key(DELTA_ENGINE_TABLE, &a.as_u32().to_be_bytes()))
            .collect();
        let (values, modeled_network) = cluster.multi_get_scatter(keys)?;
        let mut state: FxHashMap<PrimaryKey, Vec<u8>> = FxHashMap::default();
        for (i, value) in values.iter().enumerate() {
            let bytes = value
                .as_ref()
                .ok_or(CoreError::MissingChunk(path[i].as_u32()))?;
            let mut r = varint::VarintReader::new(bytes);
            let n_added = r.read_u64().map_err(CoreError::from)? as usize;
            let mut added = Vec::with_capacity(n_added);
            for _ in 0..n_added {
                let ck_bytes: [u8; 12] = r
                    .read_bytes(12)
                    .map_err(CoreError::from)?
                    .try_into()
                    .expect("12 bytes");
                let ck = crate::model::CompositeKey::from_bytes(&ck_bytes);
                let len = r.read_u64().map_err(CoreError::from)? as usize;
                let payload = r.read_bytes(len).map_err(CoreError::from)?.to_vec();
                added.push((ck, payload));
            }
            let n_removed = r.read_u64().map_err(CoreError::from)? as usize;
            for _ in 0..n_removed {
                let ck_bytes: [u8; 12] = r
                    .read_bytes(12)
                    .map_err(CoreError::from)?
                    .try_into()
                    .expect("12 bytes");
                let ck = crate::model::CompositeKey::from_bytes(&ck_bytes);
                state.remove(&ck.pk);
            }
            for (ck, payload) in added {
                state.insert(ck.pk, payload);
            }
        }
        let mut out: Vec<(PrimaryKey, Vec<u8>)> = state.into_iter().collect();
        out.sort_unstable_by_key(|&(pk, _)| pk);
        Ok(DeltaQueryResult {
            records: out,
            span: path.len(),
            modeled_network,
        })
    }

    /// Range retrieval: reconstruct, then filter (worst case, §5.4).
    pub fn get_range(
        &self,
        cluster: &Cluster,
        lo: PrimaryKey,
        hi: PrimaryKey,
        v: VersionId,
    ) -> Result<DeltaQueryResult, CoreError> {
        let mut result = self.get_version(cluster, v)?;
        result.records.retain(|&(pk, _)| pk >= lo && pk <= hi);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::testutil;
    use rstore_vgraph::DatasetSpec;

    #[test]
    fn subchunk_groups_by_pk() {
        let bundle = testutil::from_spec(&DatasetSpec::tiny(9));
        let input = bundle.input();
        let p = SubchunkBaseline.partition(&input);
        // Same pk ⇒ same chunk; different pk ⇒ different chunk.
        for i in 0..input.num_items() {
            for j in (i + 1)..input.num_items() {
                let same_pk = input.item_pk[i] == input.item_pk[j];
                let same_chunk = p.chunk_of[i] == p.chunk_of[j];
                assert_eq!(same_pk, same_chunk, "items {i},{j}");
            }
        }
    }

    #[test]
    fn single_address_gives_one_chunk_per_record() {
        let bundle = testutil::from_spec(&DatasetSpec::tiny(10));
        let input = bundle.input();
        let p = SingleAddressBaseline.partition(&input);
        assert_eq!(p.num_chunks, input.num_items());
        let mut sorted = p.chunk_of.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), input.num_items());
    }

    #[test]
    fn subchunk_span_is_maximal() {
        // Version retrieval under SUBCHUNK touches one chunk per live
        // key — far more than a capacity-packed layout.
        let bundle = testutil::from_spec(&DatasetSpec::tiny(11));
        let input = bundle.input();
        let sub = SubchunkBaseline.partition(&input);
        let packed = crate::partition::traversal::TraversalPartitioner::depth_first(4096)
            .partition(&input);
        let sub_span = testutil::total_span(&input, &sub);
        let packed_span = testutil::total_span(&input, &packed);
        assert!(
            sub_span > packed_span * 3,
            "subchunk span {sub_span} vs packed {packed_span}"
        );
    }

    #[test]
    fn delta_layout_span_grows_with_depth() {
        let ds = DatasetSpec::tiny_chain(12).generate();
        let layout = DeltaLayout::build(&ds, 4096);
        let first = layout.version_span(&ds, VersionId(1));
        let last = layout.version_span(&ds, VersionId((ds.graph.len() - 1) as u32));
        assert!(
            last >= first,
            "deeper versions must touch at least as many delta chunks"
        );
        assert!(layout.total_version_span(&ds) > 0);
        assert!(layout.num_chunks() > 0);
    }

    #[test]
    fn delta_layout_bytes_accumulate_along_path() {
        let ds = DatasetSpec::tiny_chain(13).generate();
        let layout = DeltaLayout::build(&ds, 1 << 20);
        let mid = VersionId((ds.graph.len() / 2) as u32);
        let leaf = VersionId((ds.graph.len() - 1) as u32);
        assert!(layout.version_bytes(&ds, leaf) > layout.version_bytes(&ds, mid));
    }

    #[test]
    fn names() {
        assert_eq!(SubchunkBaseline.name(), "SUBCHUNK");
        assert_eq!(SingleAddressBaseline.name(), "SINGLE-ADDRESS");
    }

    #[test]
    fn delta_engine_reconstructs_versions_exactly() {
        let ds = DatasetSpec::tiny(14).generate();
        let cluster = Cluster::builder().nodes(2).build();
        let engine = DeltaEngine::load(&ds, &cluster).unwrap();

        let store = ds.record_store();
        let oracle = ds.materialize(&store);
        for vi in 0..ds.graph.len() {
            let v = VersionId(vi as u32);
            let result = engine.get_version(&cluster, v).unwrap();
            let expect = oracle.contents(v);
            assert_eq!(result.records.len(), expect.len(), "version {v}");
            for ((pk, payload), &(epk, ord)) in result.records.iter().zip(expect) {
                assert_eq!(*pk, epk);
                assert_eq!(payload.as_slice(), store.payload(ord));
            }
            assert_eq!(result.span, ds.graph.path_from_root(v).len());
        }
    }

    #[test]
    fn delta_engine_range_filters_after_reconstruction() {
        let ds = DatasetSpec::tiny_chain(15).generate();
        let cluster = Cluster::builder().nodes(1).build();
        let engine = DeltaEngine::load(&ds, &cluster).unwrap();
        let v = VersionId((ds.graph.len() - 1) as u32);
        let full = engine.get_version(&cluster, v).unwrap();
        let ranged = engine.get_range(&cluster, 0, 5, v).unwrap();
        assert!(ranged.records.len() <= full.records.len());
        assert!(ranged.records.iter().all(|&(pk, _)| pk <= 5));
        // The paper's point: range queries cannot fetch less than the
        // full version under DELTA.
        assert_eq!(ranged.span, full.span);
    }
}
