//! Greedy depth-first / breadth-first partitioning — paper §3.3,
//! Algorithm 4.
//!
//! Traverse the version tree from the root; the first time an item is
//! encountered (it appears in the visited version but was not placed
//! yet), append it to the open chunk. Depth-first keeps a branch's
//! records contiguous, which the paper shows beats breadth-first
//! (Example 5): a version's descendants can all use the records it
//! appended, whereas interleaving sibling branches pollutes chunks
//! with records the other branch never reads. On a linear chain both
//! traversals coincide.

use super::{ChunkPacker, PartitionInput, Partitioner, Partitioning};

/// Traversal order for [`TraversalPartitioner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Order {
    Depth,
    Breadth,
}

/// The greedy traversal partitioner of §3.3.
#[derive(Debug, Clone)]
pub struct TraversalPartitioner {
    order: Order,
    capacity: usize,
}

impl TraversalPartitioner {
    /// Depth-first variant (paper's DEPTHFIRST).
    pub fn depth_first(capacity: usize) -> Self {
        Self {
            order: Order::Depth,
            capacity,
        }
    }

    /// Breadth-first variant (paper's BREADTHFIRST).
    pub fn breadth_first(capacity: usize) -> Self {
        Self {
            order: Order::Breadth,
            capacity,
        }
    }
}

impl Partitioner for TraversalPartitioner {
    fn partition(&self, input: &PartitionInput<'_>) -> Partitioning {
        let order = match self.order {
            Order::Depth => input.tree.dfs_order(),
            Order::Breadth => input.tree.bfs_order(),
        };
        let n = input.num_items();
        let mut packer = ChunkPacker::new(n, self.capacity);
        let mut placed = vec![false; n];
        for v in order {
            // Items first encountered at v: the delta's new records
            // (Algorithm 4 reads ∆(u,v) and populates the chunk).
            for &item in &input.version_items[v.index()] {
                if !placed[item as usize] {
                    placed[item as usize] = true;
                    packer.add_item(item, input.item_sizes[item as usize]);
                }
            }
        }
        // Items never referenced by any version (possible for interned
        // records whose versions were all pruned) each get a chunk.
        for (item, was_placed) in placed.iter().enumerate() {
            if !was_placed {
                packer.add_item(item as u32, input.item_sizes[item]);
            }
        }
        packer.finish()
    }

    fn name(&self) -> &'static str {
        match self.order {
            Order::Depth => "DEPTHFIRST",
            Order::Breadth => "BREADTHFIRST",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::testutil;
    use rstore_vgraph::{DatasetSpec, VersionGraph};

    #[test]
    fn valid_on_random_dataset() {
        let bundle = testutil::from_spec(&DatasetSpec::tiny(7));
        for p in [
            TraversalPartitioner::depth_first(512),
            TraversalPartitioner::breadth_first(512),
        ] {
            let out = p.partition(&bundle.input());
            out.validate(&bundle.item_sizes, 512, 0.25).unwrap();
        }
    }

    #[test]
    fn traversals_coincide_on_chains() {
        let bundle = testutil::from_spec(&DatasetSpec::tiny_chain(8));
        let input = bundle.input();
        let dfs = TraversalPartitioner::depth_first(512).partition(&input);
        let bfs = TraversalPartitioner::breadth_first(512).partition(&input);
        assert_eq!(dfs, bfs, "paper: on linear chains they reduce to the same");
    }

    #[test]
    fn dfs_no_worse_than_bfs_on_branched_trees() {
        // Average over several branched datasets: DFS should win
        // (paper: "BREADTHFIRST is always worse than DEPTHFIRST").
        let mut dfs_total = 0usize;
        let mut bfs_total = 0usize;
        for seed in 0..5 {
            let mut spec = DatasetSpec::tiny(100 + seed);
            spec.branch_prob = 0.3;
            spec.num_versions = 60;
            let bundle = testutil::from_spec(&spec);
            let input = bundle.input();
            dfs_total +=
                testutil::total_span(&input, &TraversalPartitioner::depth_first(512).partition(&input));
            bfs_total += testutil::total_span(
                &input,
                &TraversalPartitioner::breadth_first(512).partition(&input),
            );
        }
        assert!(
            dfs_total <= bfs_total,
            "DFS span {dfs_total} worse than BFS {bfs_total}"
        );
    }

    #[test]
    fn example5_shape() {
        // Fig. 6-like tree: V0 root with records 0..4 (chunk size 4
        // records), V1 and V2 siblings adding 2 records each, V3 child
        // of V1 adding 2 records.
        let mut tree = VersionGraph::new();
        let v0 = tree.add_root();
        let v1 = tree.add_version(&[v0]);
        let _v2 = tree.add_version(&[v0]);
        let _v3 = tree.add_version(&[v1]);
        // Items: V0 → {0,1,2,3}; V1 adds {4,5}; V2 adds {6,7};
        // V3 adds {8,9} and keeps V1's.
        let version_items: Vec<Vec<u32>> = vec![
            vec![0, 1, 2, 3],
            vec![0, 1, 2, 3, 4, 5],
            vec![0, 1, 2, 3, 6, 7],
            vec![0, 1, 2, 3, 4, 5, 8, 9],
        ];
        let item_sizes = vec![1u32; 10];
        let item_pk = vec![0u64; 10];
        let input = PartitionInput {
            tree: &tree,
            version_items: &version_items,
            item_sizes: &item_sizes,
            item_pk: &item_pk,
        };
        // Chunk capacity 4 "records".
        let dfs = TraversalPartitioner::depth_first(4).partition(&input);
        // DFS visits V0, V1, V3, V2: chunk1 = {4,5,8,9} (V1's and V3's
        // records together — option (b) in Example 5).
        assert_eq!(dfs.chunk_of[4], dfs.chunk_of[5]);
        assert_eq!(dfs.chunk_of[5], dfs.chunk_of[8]);
        assert_eq!(dfs.chunk_of[8], dfs.chunk_of[9]);
        let bfs = TraversalPartitioner::breadth_first(4).partition(&input);
        // BFS visits V0, V1, V2, V3: chunk1 = {4,5,6,7} mixes branches.
        assert_eq!(bfs.chunk_of[4], bfs.chunk_of[6]);
        // And V3's records land in a third chunk, away from V1's.
        assert_ne!(bfs.chunk_of[8], bfs.chunk_of[4]);
    }

    #[test]
    fn names() {
        assert_eq!(TraversalPartitioner::depth_first(1).name(), "DEPTHFIRST");
        assert_eq!(TraversalPartitioner::breadth_first(1).name(), "BREADTHFIRST");
    }
}
