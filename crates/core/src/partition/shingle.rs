//! Shingle (min-hash) partitioning — paper §3.1, Algorithms 1 & 2.
//!
//! For every item, compute `l` min-hashes over the set of versions the
//! item belongs to; sort items lexicographically by their shingle
//! vectors (items whose version sets overlap heavily end up adjacent);
//! fill chunks in that order. Unlike the traversal algorithms this
//! ignores the version-tree structure, relying purely on set
//! similarity — which is why its quality degrades on shallow trees
//! (§5.2) where version sets are less distinctive.

use super::{ChunkPacker, PartitionInput, Partitioner, Partitioning};

/// Min-hash shingle partitioner.
#[derive(Debug, Clone)]
pub struct ShinglePartitioner {
    num_hashes: usize,
    capacity: usize,
}

impl ShinglePartitioner {
    /// Creates a partitioner computing `num_hashes` min-hashes per
    /// item (the paper's `l`, a small constant) and packing chunks of
    /// `capacity` bytes.
    pub fn new(num_hashes: usize, capacity: usize) -> Self {
        Self {
            num_hashes: num_hashes.max(1),
            capacity,
        }
    }
}

/// One member of a pairwise-independent-ish hash family: splitmix64
/// seeded per function index.
#[inline]
fn hash_version(seed: u64, v: u32) -> u64 {
    let mut h = seed ^ (u64::from(v)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl Partitioner for ShinglePartitioner {
    fn partition(&self, input: &PartitionInput<'_>) -> Partitioning {
        let n = input.num_items();
        let l = self.num_hashes;
        let seeds: Vec<u64> = (0..l)
            .map(|i| 0x5151_5151_u64.wrapping_mul(i as u64 + 1) ^ 0xabcd_ef01)
            .collect();

        // Algorithm 1: shingles[item] = [ min_{v ∈ versions(item)} h_i(v) ].
        let mut shingles = vec![u64::MAX; n * l];
        for (v, items) in input.version_items.iter().enumerate() {
            let hashes: Vec<u64> = seeds.iter().map(|&s| hash_version(s, v as u32)).collect();
            for &item in items {
                let row = &mut shingles[item as usize * l..(item as usize + 1) * l];
                for (slot, &h) in row.iter_mut().zip(&hashes) {
                    if h < *slot {
                        *slot = h;
                    }
                }
            }
        }

        // Algorithm 2: lexicographic sort by shingle vector.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let ra = &shingles[a as usize * l..(a as usize + 1) * l];
            let rb = &shingles[b as usize * l..(b as usize + 1) * l];
            ra.cmp(rb).then(a.cmp(&b))
        });

        let mut packer = ChunkPacker::new(n, self.capacity);
        for &item in &order {
            packer.add_item(item, input.item_sizes[item as usize]);
        }
        packer.finish()
    }

    fn name(&self) -> &'static str {
        "SHINGLE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::testutil;
    use rstore_vgraph::DatasetSpec;

    #[test]
    fn produces_valid_partitioning() {
        let bundle = testutil::from_spec(&DatasetSpec::tiny(1));
        let p = ShinglePartitioner::new(4, 512).partition(&bundle.input());
        p.validate(&bundle.item_sizes, 512, 0.25).unwrap();
    }

    #[test]
    fn identical_version_sets_are_adjacent() {
        // Two groups of items: group A in versions {0,1}, group B in
        // {2,3}. Shingle ordering must not interleave them.
        let mut tree = rstore_vgraph::VersionGraph::new();
        let v0 = tree.add_root();
        let v1 = tree.add_version(&[v0]);
        let v2 = tree.add_version(&[v1]);
        let _v3 = tree.add_version(&[v2]);
        let version_items: Vec<Vec<u32>> = vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![3, 4, 5],
            vec![3, 4, 5],
        ];
        let item_sizes = vec![10u32; 6];
        let item_pk = vec![0u64; 6];
        let input = PartitionInput {
            tree: &tree,
            version_items: &version_items,
            item_sizes: &item_sizes,
            item_pk: &item_pk,
        };
        // Capacity of 30 = exactly one group per chunk if ordering is
        // right.
        let p = ShinglePartitioner::new(6, 30).partition(&input);
        assert_eq!(p.num_chunks, 2);
        assert_eq!(p.chunk_of[0], p.chunk_of[1]);
        assert_eq!(p.chunk_of[1], p.chunk_of[2]);
        assert_eq!(p.chunk_of[3], p.chunk_of[4]);
        assert_ne!(p.chunk_of[0], p.chunk_of[3]);
    }

    #[test]
    fn beats_random_assignment_on_chains(){
        let bundle = testutil::from_spec(&DatasetSpec::tiny_chain(2));
        let input = bundle.input();
        let shingle = ShinglePartitioner::new(4, 1024).partition(&input);
        let span = testutil::total_span(&input, &shingle);

        // Random assignment with the same chunk count.
        let n = input.num_items();
        let chunks = shingle.num_chunks.max(1);
        let random = Partitioning {
            chunk_of: (0..n)
                .map(|i| {
                    (super::hash_version(42, i as u32) % chunks as u64) as u32
                })
                .collect(),
            num_chunks: chunks,
        };
        let rspan = testutil::total_span(&input, &random);
        assert!(
            span < rspan,
            "shingle span {span} not better than random {rspan}"
        );
    }

    #[test]
    fn deterministic() {
        let bundle = testutil::from_spec(&DatasetSpec::tiny(3));
        let a = ShinglePartitioner::new(4, 256).partition(&bundle.input());
        let b = ShinglePartitioner::new(4, 256).partition(&bundle.input());
        assert_eq!(a, b);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(ShinglePartitioner::new(4, 1).name(), "SHINGLE");
    }
}
