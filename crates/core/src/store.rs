//! The RStore application layer: bulk load, online commits, queries.
//!
//! [`RStore`] is the paper's application server (§2.4) minus the
//! network front-end: it owns the version graph, the in-memory
//! projections and chunk maps, and a handle to the backend cluster.
//! Chunks live in the backend's `chunks` table, chunk maps in
//! `cmaps`, raw ingest deltas in `deltas`, and serialized indexes in
//! `meta` — "the chunks and associated indexes are stored in the KVS
//! separately, in two distinct tables".
//!
//! Two ingestion paths exist, as in the paper:
//!
//! * [`RStore::load_dataset`] — offline: materialize every version,
//!   build sub-chunks (`k > 1`), run the configured partitioner over
//!   the whole version tree, and bulk-write chunks + indexes.
//! * [`RStore::commit`] — online (§4): deltas accumulate in a write
//!   buffer (the *delta store*) and are partitioned in batches; placed
//!   records are never re-partitioned, and each touched chunk map is
//!   rewritten once per batch from the in-memory copy.
//!
//! Both paths run as a parallel, pipelined ingest mirroring the
//! read-side plan → fetch → extract split: sub-chunk compression and
//! chunk serialization fan out across [`StoreConfig::ingest_threads`]
//! scoped threads, serialized chunks stream to the backend in
//! per-node batches ([`Cluster::writer`]) *while later chunks are
//! still being encoded*, and the §4 batch-indexing trick is a
//! per-chunk grouping pass followed by independent chunk-map builds
//! (WAH bitmap encode per chunk on its own core) whose serialized
//! maps ride the same streaming writer. `ingest_threads = 1` keeps
//! the fully serial reference path (encode everything, then one
//! scatter-gather put) that the equivalence proptests and
//! `bench_ingest` compare against; [`IngestStages`] makes each stage
//! observable the way `QueryStats` made reads observable.
//!
//! Reads are **snapshot-isolated** from both paths: every query entry
//! point takes `&RStore` and pins an immutable, generation-stamped
//! [`StoreSnapshot`] at admission, while mutators build the next
//! generation inside a writer-only lock and publish it with one swap
//! at their meta commit point. A pinned reader therefore sees one
//! whole generation for its entire plan → fetch → extract pipeline —
//! flushes and compactions running concurrently never tear or block
//! it — and epoch-based reclamation (see [`StoreSnapshot`] and
//! [`RStore::reclaim`]) defers cache invalidation and backend deletes
//! for retired chunks until no reader pins an older generation.

use crate::cache::{CacheStats, ChunkCache};
use crate::chunk::{Chunk, SubChunk};
use crate::chunkmap::ChunkMap;
use crate::compact::{CompactionConfig, CompactionReport};
use crate::error::CoreError;
use crate::index::Projections;
use crate::model::{ChunkId, CompositeKey, PrimaryKey, Record, VersionId};
use crate::obs::{
    self, MetricsRegistry, Obs, ObsConfig, QueryOutcome, QueryTrace, SlowQuery, TraceSink,
    TID_QUERY,
};
use crate::partition::{PartitionInput, PartitionerKind};
use crate::plan::{
    self, ExecMode, ExecPolicy, ExecutedQuery, HedgeConfig, QueryPlan, QuerySpec, ReadRouting,
    RecordStream,
};
use crate::query::QueryStats;
use crate::serve::{ServeCore, ServeStats};
use crate::subchunk::SubchunkPlan;
use bytes::Bytes;
use crossbeam::channel::bounded;
use rstore_kvstore::{table_key, BreakerPolicy, Cluster, Key, KvError, WriteSummary};
use rstore_compress::varint;
use rstore_vgraph::{Dataset, VersionDelta, VersionGraph};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Backend table holding serialized chunks.
pub const CHUNK_TABLE: &str = "chunks";
/// Backend table holding serialized chunk maps.
pub const CMAP_TABLE: &str = "cmaps";
/// Backend table holding raw ingest deltas (the durable delta store).
pub const DELTA_TABLE: &str = "deltas";
/// Backend table holding serialized indexes and metadata.
pub const META_TABLE: &str = "meta";

/// Default decoded-chunk cache budget. Non-zero since the pipeline
/// refactor: serving workloads want the cache, and the cost-model
/// experiments — which must observe every fetch hitting the backend —
/// opt out explicitly with `.cache_budget(0)` and can tell residual
/// caching from `QueryStats::cache_hits`/`cache_misses` either way.
pub const DEFAULT_CACHE_BUDGET: usize = 32 * 1024 * 1024;

/// Store configuration knobs (the paper's tuning parameters).
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Target chunk size `C` in bytes (paper default: 1 MB; ours is
    /// smaller because datasets are scaled down).
    pub chunk_capacity: usize,
    /// Allowed chunk overflow fraction (§2.5: 25%).
    pub slack: f64,
    /// Max records per sub-chunk `k` (1 = no record-level
    /// compression).
    pub max_subchunk: usize,
    /// Partitioning algorithm.
    pub partitioner: PartitionerKind,
    /// Online ingest batch size (§4): deltas buffered before a
    /// partitioning pass.
    pub batch_size: usize,
    /// Decoded-chunk cache budget in bytes
    /// ([`DEFAULT_CACHE_BUDGET`] by default). `0` disables the cache,
    /// preserving the uncached retrieval behaviour the cost-model
    /// experiments measure — set it explicitly via
    /// [`RStoreBuilder::cache_budget`].
    pub cache_budget: usize,
    /// Number of independent cache shards (locks). Ignored when the
    /// cache is disabled.
    pub cache_shards: usize,
    /// Worker threads for the parallel ingest pipeline (sub-chunk
    /// compression, chunk serialization, chunk-map builds). `0` (the
    /// default) uses every available core; `1` is the fully serial
    /// reference path — no scoped threads, and every backend write
    /// deferred to one scatter-gather put at the end of the stage.
    pub ingest_threads: usize,
    /// How the query planner spreads backend keys across each key's
    /// live replica set ([`ReadRouting::FirstLive`] by default — the
    /// reference path; [`ReadRouting::Balanced`] flattens hot spans
    /// across replicas when `replication > 1`).
    pub read_routing: ReadRouting,
    /// Workers in the shared fetch pool that executes every query's
    /// node batches ([`serve`](crate::serve)). `0` (the default)
    /// sizes by the core count but floors at twice the cluster's node
    /// count — fetch jobs are I/O-bound (blocked on a node round
    /// trip), so the pool oversubscribes cores to keep every node's
    /// request queue fed; an explicit value is honoured exactly.
    pub fetch_threads: usize,
    /// Queries allowed to execute concurrently before admission
    /// control starts queueing arrivals (small spans ahead of large
    /// ones). The default is generous — backpressure, not a
    /// throttle.
    pub max_concurrent_queries: usize,
    /// Queries allowed to wait in the admission queue once the
    /// in-flight budget is full; beyond this, queries are shed with
    /// [`CoreError::Overloaded`].
    pub max_queued: usize,
    /// Background compaction policy (see
    /// [`CompactionConfig`]): candidate-selection thresholds and the
    /// auto-trigger cadence. Auto-compaction is off by default;
    /// [`RStore::compact`] always works regardless.
    pub compaction: CompactionConfig,
    /// Hedged-read policy for the pooled executor: when set, a fetch
    /// round whose straggler batch exceeds
    /// `factor ×` the node's health-scoreboard service EWMA (floored
    /// at `min`) re-issues the unserved keys to untried live replicas
    /// as backup batches — first answer wins, duplicates are charged
    /// to [`QueryStats::hedges`](crate::query::QueryStats::hedges).
    /// `None` (the default) keeps the reference single-lane path
    /// bit-identical to PR 7.
    pub hedge: Option<HedgeConfig>,
    /// Per-node circuit-breaker policy, applied to the backend
    /// cluster at [`RStoreBuilder::build`]/[`RStore::reopen`] when
    /// enabled. An Open node is skipped by replica choice exactly
    /// like a down node until its cooldown admits a half-open probe.
    /// Disabled by default.
    pub breaker: BreakerPolicy,
    /// Default modeled-time budget applied to every
    /// [`RStore::execute`]: queries still queued or fetching past it
    /// fail with [`CoreError::DeadlineExceeded`], carrying partial
    /// stats. `None` (the default) means no deadline;
    /// [`RStore::execute_with_deadline`] overrides per query.
    pub default_deadline: Option<Duration>,
    /// Observability configuration (PR 9): the always-on metrics
    /// registry, the deterministic trace sampler and the slow-query
    /// log. Defaults keep recording on (atomics only), tracing off
    /// and the slow threshold unset.
    pub obs: ObsConfig,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            chunk_capacity: 64 * 1024,
            slack: 0.25,
            max_subchunk: 1,
            partitioner: PartitionerKind::BottomUp { beta: usize::MAX },
            batch_size: 64,
            cache_budget: DEFAULT_CACHE_BUDGET,
            cache_shards: 8,
            ingest_threads: 0,
            read_routing: ReadRouting::default(),
            fetch_threads: 0,
            max_concurrent_queries: 256,
            max_queued: 1024,
            compaction: CompactionConfig::default(),
            hedge: None,
            breaker: BreakerPolicy::disabled(),
            default_deadline: None,
            obs: ObsConfig::default(),
        }
    }
}

/// Builder for [`RStore`].
#[derive(Debug, Clone, Default)]
pub struct RStoreBuilder {
    config: StoreConfig,
}

impl RStoreBuilder {
    /// Sets the chunk capacity in bytes.
    pub fn chunk_capacity(mut self, bytes: usize) -> Self {
        self.config.chunk_capacity = bytes.max(1);
        self
    }

    /// Sets the slack fraction.
    pub fn slack(mut self, slack: f64) -> Self {
        self.config.slack = slack.max(0.0);
        self
    }

    /// Sets the sub-chunk size limit `k`.
    pub fn max_subchunk(mut self, k: usize) -> Self {
        self.config.max_subchunk = k.max(1);
        self
    }

    /// Sets the partitioning algorithm.
    pub fn partitioner(mut self, kind: PartitionerKind) -> Self {
        self.config.partitioner = kind;
        self
    }

    /// Sets the online ingest batch size.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.config.batch_size = n.max(1);
        self
    }

    /// Sets the decoded-chunk cache budget in bytes (0 = disabled;
    /// the cost-model experiments rely on that to keep every fetch
    /// observable at the backend).
    pub fn cache_budget(mut self, bytes: usize) -> Self {
        self.config.cache_budget = bytes;
        self
    }

    /// Sets the number of cache shards.
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.config.cache_shards = shards.max(1);
        self
    }

    /// Sets the ingest worker-thread count (0 = every available core,
    /// 1 = the serial reference path).
    pub fn ingest_threads(mut self, threads: usize) -> Self {
        self.config.ingest_threads = threads;
        self
    }

    /// Sets the read-routing policy (how planned backend keys spread
    /// across each key's live replica set).
    pub fn read_routing(mut self, routing: ReadRouting) -> Self {
        self.config.read_routing = routing;
        self
    }

    /// Sets the shared fetch-pool worker count (0 = size by cores,
    /// floored at twice the cluster's node count).
    pub fn fetch_threads(mut self, threads: usize) -> Self {
        self.config.fetch_threads = threads;
        self
    }

    /// Sets the admission in-flight budget (clamped to ≥ 1).
    pub fn max_concurrent_queries(mut self, n: usize) -> Self {
        self.config.max_concurrent_queries = n.max(1);
        self
    }

    /// Sets the admission queue depth (0 = shed as soon as the
    /// in-flight budget is full).
    pub fn max_queued(mut self, n: usize) -> Self {
        self.config.max_queued = n;
        self
    }

    /// Sets the compaction policy (thresholds + auto-trigger cadence).
    pub fn compaction(mut self, config: CompactionConfig) -> Self {
        self.config.compaction = config;
        self
    }

    /// Enables hedged reads on the pooled executor (off by default).
    pub fn hedge(mut self, config: HedgeConfig) -> Self {
        self.config.hedge = Some(config);
        self
    }

    /// Sets the per-node circuit-breaker policy, applied to the
    /// cluster when the store is built (disabled by default).
    pub fn breaker(mut self, policy: BreakerPolicy) -> Self {
        self.config.breaker = policy;
        self
    }

    /// Sets the default per-query modeled-time budget (no deadline by
    /// default).
    pub fn default_deadline(mut self, budget: Duration) -> Self {
        self.config.default_deadline = Some(budget);
        self
    }

    /// Master observability switch (on by default). Off disables all
    /// recording, tracing and the slow-query log — the configuration
    /// the overhead bench compares the always-on default against.
    pub fn obs_enabled(mut self, enabled: bool) -> Self {
        self.config.obs.enabled = enabled;
        self
    }

    /// Sets the trace-sampling fraction in `[0.0, 1.0]` (0 = off, the
    /// default; 1.0 = trace every query). Sampling is deterministic
    /// by arrival sequence number.
    pub fn trace_sample(mut self, sample: f64) -> Self {
        self.config.obs.trace.sample = sample.clamp(0.0, 1.0);
        self
    }

    /// Queries slower than this (wall time) are captured in the
    /// slow-query log (unset by default; shed and deadline-tripped
    /// queries are captured regardless).
    pub fn slow_query_threshold(mut self, threshold: Duration) -> Self {
        self.config.obs.slow_threshold = Some(threshold);
        self
    }

    /// Sets the slow-query log capacity (newest entries retained).
    pub fn slow_log_capacity(mut self, capacity: usize) -> Self {
        self.config.obs.slow_log_capacity = capacity.max(1);
        self
    }

    /// Finishes the builder against a backend cluster.
    pub fn build(self, cluster: Cluster) -> RStore {
        if self.config.breaker.enabled {
            cluster.set_breaker(self.config.breaker);
        }
        let obs = Obs::new(self.config.obs);
        let serve = ServeCore::new(
            self.config.fetch_threads,
            cluster.node_count(),
            self.config.max_concurrent_queries,
            self.config.max_queued,
        );
        let cache = Arc::new(ChunkCache::new(
            self.config.cache_budget,
            self.config.cache_shards,
        ));
        if obs.enabled() {
            serve.set_obs(Arc::clone(obs.registry()));
            cache.set_obs(Arc::clone(obs.registry()));
        }
        let state = StoreMut::empty();
        let current = Mutex::new(Arc::new(state.snapshot()));
        RStore {
            serve,
            cluster: Arc::new(cluster),
            cache,
            obs,
            config: self.config,
            state: Mutex::new(state),
            current,
            pins: Arc::new(PinBoard::default()),
        }
    }
}

/// Per-stage wall-clock breakdown of an ingest (offline bulk load or
/// online batch flush) — the write-side counterpart of
/// [`QueryStats`]. Stages overlap by
/// design: serialized chunks and chunk maps stream to the backend
/// while later ones are still being encoded, so the fields need not
/// sum to the end-to-end time.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStages {
    /// Sub-chunk grouping and compression (the hottest ingest loop;
    /// fanned out across `workers` cores).
    pub subchunk: Duration,
    /// Time inside the partitioning algorithm.
    pub partition: Duration,
    /// Chunk assembly + serialization (overlaps `write`).
    pub assemble: Duration,
    /// Per-chunk grouping, chunk-map builds and projection updates
    /// (overlaps `write`).
    pub index: Duration,
    /// Time actually blocked on backend writes: shipping per-node
    /// batches plus waiting for outstanding ones — the part the
    /// pipeline could not hide behind encoding.
    pub write: Duration,
    /// Modeled network time of all writes (max over parallel nodes,
    /// summed across the sequential write stages).
    pub modeled_write: Duration,
    /// Worker threads the parallel stages ran on (1 = the serial
    /// reference path).
    pub workers: usize,
}

/// Report from an offline bulk load.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// Chunks created.
    pub num_chunks: usize,
    /// Distinct records stored.
    pub num_records: usize,
    /// Sub-chunks created.
    pub num_subchunks: usize,
    /// Total version span after load (Fig. 8 metric).
    pub total_version_span: usize,
    /// Uncompressed record bytes.
    pub raw_bytes: usize,
    /// Compressed bytes written as chunks.
    pub compressed_bytes: usize,
    /// Time spent inside the partitioning algorithm (same as
    /// `stages.partition`; kept for existing call sites).
    pub partition_time: Duration,
    /// End-to-end load time.
    pub total_time: Duration,
    /// Per-stage timing breakdown of the ingest pipeline.
    pub stages: IngestStages,
}

impl LoadReport {
    /// Compression ratio (raw / compressed).
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }
}

/// Report from an online batch flush.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlushReport {
    /// Versions in the flushed batch.
    pub versions: usize,
    /// New records placed.
    pub new_records: usize,
    /// New chunks created.
    pub new_chunks: usize,
    /// Existing chunk maps rewritten.
    pub maps_rewritten: usize,
    /// Per-stage timing breakdown of the flush pipeline.
    pub stages: IngestStages,
}

/// Outcome of commit resolution: the assigned version id, the
/// validated delta, and the new version's sorted contents.
type ResolvedCommit = (VersionId, VersionDelta, Vec<(PrimaryKey, VersionId)>);

/// One dirty chunk's share of a batch index pass: the chunk id, the
/// exclusive handle on its in-memory map, and the `(version, sorted
/// locals)` entries to append before the map is re-encoded.
type MapBuildJob<'a> = (u32, &'a mut ChunkMap, Vec<(VersionId, Vec<usize>)>);

/// Outcome of one streamed encode stage: the writer's accounting plus
/// how long the stage was genuinely blocked on backend writes (batch
/// shipping + waiting for outstanding replies — channel idle time,
/// which is hidden behind encoding, is excluded).
pub(crate) struct StreamOutcome {
    pub(crate) summary: WriteSummary,
    pub(crate) write_wait: Duration,
}

impl StreamOutcome {
    pub(crate) fn fold_into(&self, stages: &mut IngestStages) {
        stages.write += self.write_wait;
        stages.modeled_write += self.summary.modeled;
    }
}

/// Ships pre-encoded pairs through a [`Cluster::writer`]: streaming
/// per-node batches when the pipeline is parallel (`workers > 1`),
/// one deferred scatter-gather put on the serial reference path.
pub(crate) fn stream_writes(
    cluster: &Cluster,
    workers: usize,
    writes: Vec<(Key, Bytes)>,
) -> Result<StreamOutcome, CoreError> {
    let mut writer = if workers > 1 {
        cluster.writer()
    } else {
        cluster.writer_with_batch(usize::MAX)
    };
    let mut write_wait = Duration::ZERO;
    for (key, value) in writes {
        let t = Instant::now();
        writer.push(key, value)?;
        write_wait += t.elapsed();
    }
    let t = Instant::now();
    let summary = writer.finish()?;
    write_wait += t.elapsed();
    Ok(StreamOutcome { summary, write_wait })
}

/// The pipelined encode → write stage: runs `encode` over `jobs` on
/// `workers` scoped threads and streams each encoded pair into a
/// [`Cluster::writer`] the moment it is ready, so the node threads
/// store earlier batches while later jobs are still being encoded.
///
/// With `workers == 1` this is the serial reference path: jobs encode
/// in order on the calling thread and every write is deferred to one
/// scatter-gather put at the end (`writer_with_batch(usize::MAX)`),
/// exactly the pre-pipeline behaviour. Either way the final backend
/// state is identical — jobs produce their bytes deterministically
/// and write order is irrelevant under distinct keys.
pub(crate) fn encode_and_stream<J, F>(
    cluster: &Cluster,
    workers: usize,
    jobs: Vec<J>,
    encode: F,
) -> Result<StreamOutcome, CoreError>
where
    J: Send,
    F: Fn(J) -> (Key, Bytes) + Sync,
{
    let workers = workers.min(jobs.len()).max(1);
    if workers == 1 {
        return stream_writes(cluster, 1, jobs.into_iter().map(encode).collect());
    }

    let queue = Mutex::new(jobs.into_iter());
    let mut result: Result<StreamOutcome, KvError> = Ok(StreamOutcome {
        summary: WriteSummary::default(),
        write_wait: Duration::ZERO,
    });
    std::thread::scope(|scope| {
        let (tx, rx) = bounded::<(Key, Bytes)>(workers * 4);
        let writer_handle = scope.spawn(move || -> Result<StreamOutcome, KvError> {
            let mut writer = cluster.writer();
            let mut write_wait = Duration::ZERO;
            while let Ok((key, value)) = rx.recv() {
                let t = Instant::now();
                writer.push(key, value)?;
                write_wait += t.elapsed();
            }
            let t = Instant::now();
            let summary = writer.finish()?;
            write_wait += t.elapsed();
            Ok(StreamOutcome { summary, write_wait })
        });
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let encode = &encode;
            scope.spawn(move || loop {
                let job = queue.lock().unwrap().next();
                let Some(job) = job else { break };
                // A send failure means the writer bailed on an error;
                // stop encoding — the error surfaces from its handle.
                if tx.send(encode(job)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        result = writer_handle.join().expect("writer stage panicked");
    });
    result.map_err(CoreError::from)
}


/// Serializes chunks on their own cores and streams the blobs to the
/// chunk table in per-node batches — the shared assemble-stage tail
/// of the bulk load, the batch flush and the compaction rebuild, so
/// the chunk key layout and serialization live in exactly one place.
pub(crate) fn stream_chunk_blobs(
    cluster: &Cluster,
    workers: usize,
    jobs: Vec<(u32, Chunk)>,
) -> Result<StreamOutcome, CoreError> {
    encode_and_stream(cluster, workers, jobs, |(id, chunk)| {
        (
            table_key(CHUNK_TABLE, &ChunkId(id).to_key()),
            Bytes::from(chunk.serialize()),
        )
    })
}

/// A commit: a new version described relative to its parent.
#[derive(Debug, Clone, Default)]
pub struct CommitRequest {
    parents: Vec<VersionId>,
    is_root: bool,
    puts: Vec<(PrimaryKey, Bytes)>,
    deletes: Vec<PrimaryKey>,
}

impl CommitRequest {
    /// A root commit carrying the initial records.
    pub fn root<P: Into<Bytes>>(records: impl IntoIterator<Item = (PrimaryKey, P)>) -> Self {
        Self {
            is_root: true,
            puts: records
                .into_iter()
                .map(|(pk, payload)| (pk, payload.into()))
                .collect(),
            ..Self::default()
        }
    }

    /// A commit derived from `parent`.
    pub fn child_of(parent: VersionId) -> Self {
        Self {
            parents: vec![parent],
            ..Self::default()
        }
    }

    /// A merge commit; the delta is interpreted relative to `primary`
    /// (paper Fig. 4: partitioning uses the primary-parent tree).
    pub fn merge_of(primary: VersionId, others: impl IntoIterator<Item = VersionId>) -> Self {
        let mut parents = vec![primary];
        parents.extend(others);
        Self {
            parents,
            ..Self::default()
        }
    }

    /// Adds or replaces the record for `pk`.
    pub fn put(mut self, pk: PrimaryKey, payload: impl Into<Bytes>) -> Self {
        self.puts.push((pk, payload.into()));
        self
    }

    /// Alias of [`CommitRequest::put`] for inserts.
    pub fn insert(self, pk: PrimaryKey, payload: impl Into<Bytes>) -> Self {
        self.put(pk, payload)
    }

    /// Alias of [`CommitRequest::put`] for updates.
    pub fn update(self, pk: PrimaryKey, payload: impl Into<Bytes>) -> Self {
        self.put(pk, payload)
    }

    /// Deletes `pk`.
    pub fn delete(mut self, pk: PrimaryKey) -> Self {
        self.deletes.push(pk);
        self
    }
}

// ------------------------------------------------------------------
// Snapshot isolation (PR 10)
// ------------------------------------------------------------------

/// One immutable generation of the query-visible metadata — the unit
/// readers pin and mutators atomically swap.
///
/// # Invariants
///
/// * `generation` is strictly monotonic across publishes. A reader
///   pinning generation `g` observes exactly the metadata published
///   at `g` — never a torn mix of two generations — because every
///   field was frozen together at the publish point.
/// * Every field is behind an [`Arc`] shared with the writer-side
///   state: publishing is O(1) pointer clones, and the writer
///   copies-on-write ([`Arc::make_mut`]) before its next mutation, so
///   a published snapshot is physically immutable.
/// * The snapshot carries **no in-memory chunk maps**: the read path
///   fetches maps from the backend (or the decoded-chunk cache), so a
///   pinned snapshot stays valid while the writer rewrites its
///   resident maps. Backend chunk maps only *grow* across flushes
///   (placed records are never re-partitioned) and compaction never
///   rewrites a live id's map, so a newer backend map is always a
///   superset of the one a pinned snapshot planned against.
/// * `map_gen[c]` is the generation whose publish last rewrote chunk
///   `c`'s backend map — the cache-probe floor: a cached entry
///   stamped below it may predate the rewrite and is dropped on
///   probe (see [`ChunkCache::get`]).
/// * A chunk id is live iff it is neither `retired` (compacted away;
///   backend keys deleted, possibly deferred while old pins remain)
///   nor `free` (retired id whose slot was reclaimed and may be
///   reused by a later flush).
pub struct StoreSnapshot {
    generation: u64,
    graph: Arc<VersionGraph>,
    projections: Arc<Projections>,
    /// Compressed bytes per chunk slot (0 for retired/free ids).
    chunk_sizes: Arc<Vec<usize>>,
    /// Per chunk slot: generation whose publish last rewrote the
    /// chunk's backend map.
    map_gen: Arc<Vec<u64>>,
    retired: Arc<FxHashSet<u32>>,
    free: Arc<FxHashSet<u32>>,
    /// Records per version (the snapshot's view of the per-version
    /// contents widths; the full contents lists stay writer-only).
    record_counts: Arc<Vec<usize>>,
    /// Placed records (locator width) at publish time.
    placed_records: usize,
}

impl StoreSnapshot {
    /// The generation this snapshot was published at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The version graph frozen at this generation.
    pub fn graph(&self) -> &Arc<VersionGraph> {
        &self.graph
    }

    /// The projections frozen at this generation.
    pub(crate) fn projections(&self) -> &Projections {
        &self.projections
    }

    /// Compressed bytes per chunk slot (0 for retired/free ids).
    pub(crate) fn chunk_sizes(&self) -> &[usize] {
        &self.chunk_sizes
    }

    /// Records per version at publish time.
    pub(crate) fn record_counts(&self) -> &[usize] {
        &self.record_counts
    }

    /// Placed records (locator width) at publish time.
    pub(crate) fn placed_records(&self) -> usize {
        self.placed_records
    }

    /// Chunk ids retired by compaction, not yet reclaimed.
    pub(crate) fn retired_len(&self) -> usize {
        self.retired.len()
    }

    /// Reclaimed (reusable) chunk id slots.
    pub(crate) fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Live chunks: total slots minus retired tombstones and freed
    /// slots.
    pub fn chunk_count(&self) -> usize {
        self.chunk_sizes.len() - self.retired.len() - self.free.len()
    }

    /// Live chunk ids in ascending order.
    pub fn live_chunk_ids(&self) -> Vec<u32> {
        (0..self.chunk_sizes.len() as u32)
            .filter(|c| !self.retired.contains(c) && !self.free.contains(c))
            .collect()
    }

    /// The cache-probe floor for chunk `c` (see the type docs).
    pub(crate) fn map_gen(&self, c: u32) -> u64 {
        self.map_gen.get(c as usize).copied().unwrap_or(0)
    }
}

/// Refcounts of reader-pinned generations — a tiny epoch table. The
/// writer consults the oldest pinned generation to decide whether a
/// retired chunk's cache entries and backend keys can be reclaimed
/// immediately or must be deferred until the old pins drain.
#[derive(Debug, Default)]
pub(crate) struct PinBoard {
    pins: Mutex<BTreeMap<u64, usize>>,
}

impl PinBoard {
    fn pin(&self, generation: u64) {
        *self.pins.lock().unwrap().entry(generation).or_insert(0) += 1;
    }

    fn unpin(&self, generation: u64) {
        let mut pins = self.pins.lock().unwrap();
        if let Some(n) = pins.get_mut(&generation) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&generation);
            }
        }
    }

    /// The oldest generation any reader still pins.
    pub(crate) fn oldest(&self) -> Option<u64> {
        self.pins.lock().unwrap().keys().next().copied()
    }

    /// Total readers currently holding pins.
    pub(crate) fn count(&self) -> usize {
        self.pins.lock().unwrap().values().sum()
    }
}

/// A reader's lease on one [`StoreSnapshot`] generation: planning and
/// execution resolve all metadata through this handle, and the pin it
/// holds blocks reclamation of the generation's chunks until dropped.
/// Dropping is cheap — one refcount update plus a histogram sample,
/// never backend I/O.
pub struct PinnedSnapshot {
    snap: Arc<StoreSnapshot>,
    board: Arc<PinBoard>,
    obs: Option<Arc<MetricsRegistry>>,
    start: Instant,
}

impl PinnedSnapshot {
    /// The cache-probe floor for chunk `c`.
    pub(crate) fn floor(&self, c: u32) -> u64 {
        self.snap.map_gen(c)
    }
}

impl std::ops::Deref for PinnedSnapshot {
    type Target = StoreSnapshot;
    fn deref(&self) -> &StoreSnapshot {
        &self.snap
    }
}

impl std::fmt::Debug for PinnedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedSnapshot")
            .field("generation", &self.snap.generation)
            .finish_non_exhaustive()
    }
}

impl Drop for PinnedSnapshot {
    fn drop(&mut self) {
        self.board.unpin(self.snap.generation);
        if let Some(r) = &self.obs {
            r.snapshot_pin_seconds.record_duration(self.start.elapsed());
        }
    }
}

/// Reclamation work for retired chunks whose generation may still be
/// pinned: drained (cache drop + backend delete) only once no reader
/// pins a generation older than `publish_gen`.
#[derive(Debug)]
pub(crate) struct DeferredReclaim {
    /// Generation whose publish retired these chunks; a reader pinned
    /// strictly before it may still plan fetches of the old keys.
    pub(crate) publish_gen: u64,
    /// Victim chunk ids (their cache entries drop lazily on drain).
    pub(crate) chunk_ids: Vec<u32>,
    /// Backend keys (chunk + cmap blobs) to delete on drain.
    pub(crate) keys: Vec<Key>,
}

/// Outcome of one [`RStore::reclaim`] pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReclaimReport {
    /// Deferred reclamation batches drained this pass.
    pub deferred_drained: usize,
    /// Backend keys deleted draining them.
    pub keys_deleted: usize,
    /// Retired tombstone slots moved to the reusable free list.
    pub slots_reclaimed: usize,
    /// Trailing free slots truncated outright (id space shrunk).
    pub slots_truncated: usize,
}

/// The writer-side state: the `Arc`'d fields shared with the
/// published snapshot (copied-on-write before each mutation) plus
/// writer-only state no reader consults (the in-memory chunk maps,
/// the locator, the delta store). Guarded by `RStore::state`, so
/// exactly one mutator runs at a time while readers proceed against
/// pinned snapshots.
pub(crate) struct StoreMut {
    /// Generation of the most recently published snapshot.
    pub(crate) generation: u64,
    pub(crate) graph: Arc<VersionGraph>,
    pub(crate) projections: Arc<Projections>,
    /// Compressed bytes per chunk slot (0 for retired/free ids).
    pub(crate) chunk_sizes: Arc<Vec<usize>>,
    /// Per chunk slot: generation whose publish last rewrote the
    /// chunk's backend map.
    pub(crate) map_gen: Arc<Vec<u64>>,
    /// Chunk ids retired by compaction: their backend keys are
    /// deleted (or deferred) and no projection references them.
    pub(crate) retired: Arc<FxHashSet<u32>>,
    /// Retired ids whose slots were reclaimed; reused by later
    /// flushes before fresh ids are minted.
    pub(crate) free: Arc<FxHashSet<u32>>,
    /// Records per version (snapshot view of the contents widths).
    pub(crate) record_counts: Arc<Vec<usize>>,
    /// Per version: sorted `(pk, origin)` pairs (writer-only).
    pub(crate) contents: Vec<Vec<(PrimaryKey, VersionId)>>,
    /// Composite key → (chunk, chunk-local ordinal) (writer-only).
    pub(crate) locator: FxHashMap<CompositeKey, (u32, u32)>,
    /// In-memory chunk maps (authoritative; persisted per batch).
    /// Indexed by chunk id; retired ids keep an empty tombstone map
    /// until a reclamation pass frees or truncates the slot.
    pub(crate) chunk_maps: Vec<ChunkMap>,
    /// The delta store: commits awaiting a partitioning pass.
    pending: Vec<(VersionId, VersionDelta)>,
    /// Batch flushes since the last compaction (the auto-trigger
    /// counter).
    pub(crate) flushes_since_compaction: usize,
    /// Report of the most recent compaction, for observability.
    pub(crate) last_compaction: Option<CompactionReport>,
    /// Error of the most recent compaction attempt, if it failed;
    /// cleared by the next successful attempt.
    pub(crate) last_compaction_error: Option<CoreError>,
    /// Compaction victims selected but not yet rebuilt — the
    /// resumable queue budgeted incremental slices drain across
    /// calls.
    pub(crate) victim_queue: Vec<u32>,
    /// Retired-chunk reclamation waiting for old pins to drain.
    pub(crate) deferred: Vec<DeferredReclaim>,
}

impl StoreMut {
    fn empty() -> Self {
        Self {
            generation: 1,
            graph: Arc::new(VersionGraph::new()),
            projections: Arc::new(Projections::new()),
            chunk_sizes: Arc::new(Vec::new()),
            map_gen: Arc::new(Vec::new()),
            retired: Arc::new(FxHashSet::default()),
            free: Arc::new(FxHashSet::default()),
            record_counts: Arc::new(Vec::new()),
            contents: Vec::new(),
            locator: FxHashMap::default(),
            chunk_maps: Vec::new(),
            pending: Vec::new(),
            flushes_since_compaction: 0,
            last_compaction: None,
            last_compaction_error: None,
            victim_queue: Vec::new(),
            deferred: Vec::new(),
        }
    }

    fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            generation: self.generation,
            graph: Arc::clone(&self.graph),
            projections: Arc::clone(&self.projections),
            chunk_sizes: Arc::clone(&self.chunk_sizes),
            map_gen: Arc::clone(&self.map_gen),
            retired: Arc::clone(&self.retired),
            free: Arc::clone(&self.free),
            record_counts: Arc::clone(&self.record_counts),
            placed_records: self.locator.len(),
        }
    }

    /// Version ids still buffered in the delta store (compaction must
    /// not claim them in rebuilt chunk maps: their records are
    /// unplaced and chunk maps require strictly increasing pushes).
    pub(crate) fn pending_version_ids(&self) -> FxHashSet<u32> {
        self.pending.iter().map(|&(v, _)| v.as_u32()).collect()
    }

    /// Live chunk ids (neither retired nor freed), ascending.
    pub(crate) fn live_chunk_ids(&self) -> Vec<u32> {
        (0..self.chunk_maps.len() as u32)
            .filter(|c| !self.retired.contains(c) && !self.free.contains(c))
            .collect()
    }
}

/// The `n` chunk id slots the next allocation will hand out —
/// reclaimed free slots first (ascending; the bounded-id-space
/// guarantee), then fresh ids past the tail — **without mutating**
/// the writer state. Writers that must stay rollback-free (the
/// compaction slices) address backend writes with the peeked ids and
/// only [`claim_chunk_ids`] after those writes are durable; the two
/// agree as long as no allocation happens in between (the state lock
/// is held throughout).
pub(crate) fn peek_chunk_ids(st: &StoreMut, n: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = st.free.iter().copied().collect();
    ids.sort_unstable();
    ids.truncate(n);
    let mut next = st.chunk_maps.len() as u32;
    while ids.len() < n {
        ids.push(next);
        next += 1;
    }
    ids
}

/// Claims `n` chunk id slots (the same ids [`peek_chunk_ids`] would
/// return): free slots leave the free list, fresh ids extend
/// `chunk_maps`, `chunk_sizes` and `map_gen` with default slots. The
/// caller overwrites every returned slot.
pub(crate) fn claim_chunk_ids(st: &mut StoreMut, n: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = Vec::with_capacity(n);
    if !st.free.is_empty() {
        let free = Arc::make_mut(&mut st.free);
        let mut reusable: Vec<u32> = free.iter().copied().collect();
        reusable.sort_unstable();
        for id in reusable.into_iter().take(n) {
            free.remove(&id);
            ids.push(id);
        }
    }
    while ids.len() < n {
        let id = st.chunk_maps.len() as u32;
        st.chunk_maps.push(ChunkMap::default());
        Arc::make_mut(&mut st.chunk_sizes).push(0);
        Arc::make_mut(&mut st.map_gen).push(0);
        ids.push(id);
    }
    ids
}

/// The RStore instance (application-server state + backend handle).
pub struct RStore {
    /// Behind `Arc` so pooled fetch jobs — which cannot borrow from
    /// the query's stack — share the backend handle with `&self`
    /// query entry points.
    pub(crate) cluster: Arc<Cluster>,
    /// Decoded-chunk cache; interior mutability keeps queries `&self`
    /// (`Arc` for the same reason as `cluster`).
    pub(crate) cache: Arc<ChunkCache>,
    /// The serving core: shared fetch pool (lazily started) plus
    /// admission control.
    pub(crate) serve: ServeCore,
    /// The observability hub (PR 9): metrics registry, trace sampler
    /// and slow-query log. Behind `Arc` so the execution layer shares
    /// it without borrowing.
    pub(crate) obs: Arc<Obs>,
    pub(crate) config: StoreConfig,
    /// The writer-side state: one mutator at a time holds this lock
    /// while readers keep serving off pinned snapshots.
    pub(crate) state: Mutex<StoreMut>,
    /// The published snapshot mutators swap at their commit points.
    /// A plain mutex stands in for an atomic Arc swap: the critical
    /// section is one pointer clone either side.
    pub(crate) current: Mutex<Arc<StoreSnapshot>>,
    /// Refcounts of reader-pinned generations (epoch table for
    /// deferred reclamation).
    pub(crate) pins: Arc<PinBoard>,
}

impl RStore {
    /// Starts a builder.
    pub fn builder() -> RStoreBuilder {
        RStoreBuilder::default()
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The current published snapshot, unpinned — for cheap
    /// point-in-time metadata reads. Query paths use [`RStore::pin`]
    /// so reclamation respects them.
    pub(crate) fn snapshot(&self) -> Arc<StoreSnapshot> {
        Arc::clone(&self.current.lock().unwrap())
    }

    /// Pins the current snapshot: the returned handle keeps observing
    /// this generation while mutators publish newer ones, and
    /// reclamation of its chunks is blocked until the pin drops.
    pub fn pin(&self) -> PinnedSnapshot {
        let snap = self.snapshot();
        self.pins.pin(snap.generation);
        PinnedSnapshot {
            snap,
            board: Arc::clone(&self.pins),
            obs: self
                .obs
                .enabled()
                .then(|| Arc::clone(self.obs.registry())),
            start: Instant::now(),
        }
    }

    /// Publishes the next generation: bumps the counter and swaps the
    /// current snapshot — O(1) `Arc` clones. This is the single
    /// commit point every mutator funnels through after its meta
    /// write lands.
    pub(crate) fn publish(&self, st: &mut StoreMut) {
        st.generation += 1;
        let snap = Arc::new(st.snapshot());
        *self.current.lock().unwrap() = snap;
        if self.obs.enabled() {
            self.obs.registry().generation_swaps_total.inc();
        }
    }

    /// The version graph (the published snapshot's view; an `Arc`, so
    /// holding it never blocks mutators).
    pub fn graph(&self) -> Arc<VersionGraph> {
        Arc::clone(&self.snapshot().graph)
    }

    /// Backend cluster handle.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Decoded-chunk cache counters (all zero when the cache is
    /// disabled via a zero [`StoreConfig::cache_budget`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of live chunks in the backend (retired compaction
    /// victims and reclaimed free slots excluded).
    pub fn chunk_count(&self) -> usize {
        self.snapshot().chunk_count()
    }

    /// Total chunk id slots, live or not — the quantity the
    /// bounded-memory reclamation test watches.
    pub fn chunk_slot_count(&self) -> usize {
        self.snapshot().chunk_sizes.len()
    }

    /// Live chunk ids in ascending order. After a compaction the live
    /// set has holes where retired ids sit as tombstones until a
    /// [`RStore::reclaim`] pass frees them for reuse.
    pub fn live_chunk_ids(&self) -> Vec<u32> {
        self.snapshot().live_chunk_ids()
    }

    /// Chunk ids retired by past compactions, not yet reclaimed.
    pub fn retired_chunk_count(&self) -> usize {
        self.snapshot().retired.len()
    }

    /// The published snapshot generation (bumped by every mutator
    /// publish).
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// Readers currently holding snapshot pins.
    pub fn pinned_readers(&self) -> usize {
        self.pins.count()
    }

    /// Deferred-reclamation batches waiting for old pins to drain.
    pub fn reclaim_backlog(&self) -> usize {
        self.state.lock().unwrap().deferred.len()
    }

    /// Report of the most recent [`RStore::compact`] run (explicit or
    /// auto-triggered by the flush cadence), if any.
    pub fn last_compaction(&self) -> Option<CompactionReport> {
        self.state.lock().unwrap().last_compaction
    }

    /// Error of the most recent compaction attempt, if it failed;
    /// cleared by the next successful (or no-op) attempt. For
    /// auto-triggered runs this is the only surface — the flush that
    /// triggered them was already durable, so the error is contained
    /// here rather than poisoning the commit; a failed compaction
    /// leaves the store fully serving (see the `compact` module
    /// docs).
    pub fn last_compaction_error(&self) -> Option<CoreError> {
        self.state.lock().unwrap().last_compaction_error.clone()
    }

    /// Number of versions committed or loaded.
    pub fn version_count(&self) -> usize {
        self.snapshot().graph.len()
    }

    /// Records in version `v`.
    pub fn version_record_count(&self, v: VersionId) -> Result<usize, CoreError> {
        let snap = self.snapshot();
        if !snap.graph.contains(v) {
            return Err(CoreError::UnknownVersion(v.as_u32()));
        }
        Ok(snap.record_counts[v.index()])
    }

    /// The span of version `v` (chunks a full retrieval touches).
    pub fn version_span(&self, v: VersionId) -> usize {
        self.snapshot().projections.version_span(v)
    }

    /// Σ_v span(v) — the Fig. 8 metric.
    pub fn total_version_span(&self) -> usize {
        self.snapshot().projections.total_version_span()
    }

    /// The key span of `pk` (Fig. 12 metric).
    pub fn key_span(&self, pk: PrimaryKey) -> usize {
        self.snapshot().projections.key_span(pk)
    }

    /// Serialized sizes of the two projections (§2.4 accounting).
    pub fn index_bytes(&self) -> (usize, usize) {
        self.snapshot().projections.serialized_bytes()
    }

    /// Total compressed chunk bytes (storage-cost proxy, §2.5).
    pub fn storage_bytes(&self) -> usize {
        self.snapshot().chunk_sizes.iter().sum()
    }

    /// Worker threads the ingest pipeline runs on (resolves the
    /// `0 = auto` configuration against the machine).
    pub(crate) fn ingest_workers(&self) -> usize {
        plan::worker_count(self.config.ingest_threads)
    }

    /// Records one ingest pass's stage breakdown into the metrics
    /// registry (shared by bulk load and online flush).
    fn record_ingest_stages(&self, stages: &IngestStages) {
        if !self.obs.enabled() {
            return;
        }
        let r = self.obs.registry();
        r.ingest_stages.record("subchunk", stages.subchunk);
        r.ingest_stages.record("partition", stages.partition);
        r.ingest_stages.record("assemble", stages.assemble);
        r.ingest_stages.record("index", stages.index);
        r.ingest_stages.record("write", stages.write);
        r.ingest_stages.record("modeled_write", stages.modeled_write);
    }

    // ------------------------------------------------------------------
    // Offline bulk load
    // ------------------------------------------------------------------

    /// Bulk-loads a generated dataset: sub-chunking, partitioning,
    /// chunk/index construction and backend writes, pipelined across
    /// [`StoreConfig::ingest_threads`] cores (see the module docs).
    ///
    /// The store must be empty.
    pub fn load_dataset(&self, dataset: &Dataset) -> Result<LoadReport, CoreError> {
        let mut guard = self.state.lock().unwrap();
        let st = &mut *guard;
        if !st.graph.is_empty() {
            return Err(CoreError::BadCommit("store is not empty".into()));
        }
        let t0 = Instant::now();
        let workers = self.ingest_workers();
        let mut stages = IngestStages {
            workers,
            ..IngestStages::default()
        };
        let record_store = dataset.record_store();
        let materialized = dataset.materialize(&record_store);

        // Stage 1 — sub-chunk (k = 1 ⇒ one record per sub-chunk):
        // grouping is serial, compression fans out across cores.
        let t = Instant::now();
        let plan = SubchunkPlan::build(dataset, &record_store, self.config.max_subchunk);
        let subchunks = plan.materialize_parallel(&record_store, workers);
        stages.subchunk = t.elapsed();
        let (raw_bytes, compressed_bytes) = plan.compression(&subchunks);

        // Stage 2 — partition sub-chunks over the version tree.
        let tree = dataset.graph.to_tree();
        let version_items = plan.group_version_items(&materialized);
        let item_sizes: Vec<u32> = subchunks
            .iter()
            .map(|s| s.compressed_bytes() as u32)
            .collect();
        let item_pk: Vec<u64> = plan
            .groups
            .iter()
            .map(|g| record_store.key(g[0]).pk)
            .collect();
        let input = PartitionInput {
            tree: &tree,
            version_items: &version_items,
            item_sizes: &item_sizes,
            item_pk: &item_pk,
        };
        let partitioner = self.config.partitioner.build(self.config.chunk_capacity);
        let t_part = Instant::now();
        let partitioning = partitioner.partition(&input);
        stages.partition = t_part.elapsed();

        // Stage 3 — assemble: move sub-chunks into their chunks and
        // record placement (serial, cheap), then serialize each chunk
        // on its own core, streaming serialized chunks to the backend
        // while later chunks are still being encoded.
        let t = Instant::now();
        let chunk_items = partitioning.chunk_items();
        let mut subchunk_slots: Vec<Option<SubChunk>> = subchunks.into_iter().map(Some).collect();
        let mut chunks: Vec<Chunk> = Vec::with_capacity(chunk_items.len());
        for (chunk_idx, items) in chunk_items.iter().enumerate() {
            let mut chunk = Chunk::new();
            let mut local = 0u32;
            for &g in items {
                let sc = subchunk_slots[g as usize].take().expect("item in one chunk");
                for &member in &plan.groups[g as usize] {
                    st.locator
                        .insert(record_store.key(member), (chunk_idx as u32, local));
                    local += 1;
                }
                chunk.subchunks.push(sc);
            }
            Arc::make_mut(&mut st.chunk_sizes).push(chunk.compressed_bytes());
            Arc::make_mut(&mut st.map_gen).push(st.generation + 1);
            st.chunk_maps.push(ChunkMap::new(local as usize));
            chunks.push(chunk);
        }
        let jobs: Vec<(u32, Chunk)> = chunks
            .into_iter()
            .enumerate()
            .map(|(i, c)| (i as u32, c))
            .collect();
        let outcome = stream_chunk_blobs(&self.cluster, workers, jobs)?;
        stages.assemble = t.elapsed();
        outcome.fold_into(&mut stages);

        // Adopt graph and contents, then index every version.
        st.graph = Arc::new(dataset.graph.clone());
        st.contents = (0..st.graph.len())
            .map(|v| {
                materialized
                    .contents(VersionId(v as u32))
                    .iter()
                    .map(|&(pk, ord)| (pk, record_store.key(ord).origin))
                    .collect()
            })
            .collect();
        st.record_counts = Arc::new(st.contents.iter().map(|c| c.len()).collect());
        let num_records = record_store.len();
        let versions: Vec<VersionId> = st.graph.ids().collect();

        // Stages 4+5 — index + write: per-chunk grouping, parallel
        // chunk-map builds, serialized maps ride the streaming writer.
        let t = Instant::now();
        let (_, index_outcome) = self.index_versions_locked(st, &versions)?;
        stages.index = t.elapsed();
        index_outcome.fold_into(&mut stages);
        let (meta_modeled, meta_wait) = self.persist_meta_locked(st)?;
        stages.modeled_write += meta_modeled;
        stages.write += meta_wait;
        self.publish(st);
        self.record_ingest_stages(&stages);

        Ok(LoadReport {
            num_chunks: st.chunk_maps.len(),
            num_records,
            num_subchunks: plan.num_groups(),
            total_version_span: st.projections.total_version_span(),
            raw_bytes,
            compressed_bytes,
            partition_time: stages.partition,
            total_time: t0.elapsed(),
            stages,
        })
    }

    /// Adds chunk-map entries and projections for `versions` (ids in
    /// ascending order), then persists the touched chunk maps — once
    /// each, rebuilt from memory, exactly the §4 batching trick.
    ///
    /// Restructured for the ingest pipeline: a serial per-chunk
    /// grouping pass (locator lookups + projection updates) collects
    /// each dirty chunk's `(version, locals)` work list, then the
    /// chunk maps are built independently — `ChunkMap::push_version`
    /// plus the WAH bitmap encode run per chunk on its own core — and
    /// the serialized maps stream to the backend through the same
    /// writer stage the chunk blobs used. Returns the dirty-map count
    /// and the write accounting.
    fn index_versions_locked(
        &self,
        st: &mut StoreMut,
        versions: &[VersionId],
    ) -> Result<(Vec<u32>, StreamOutcome), CoreError> {
        let workers = self.ingest_workers();
        // Pass 1 — group the batch per chunk. Outer loop ascends, so
        // each chunk's work list has strictly increasing versions —
        // the `push_version` precondition.
        let projections = Arc::make_mut(&mut st.projections);
        let mut per_chunk: FxHashMap<u32, Vec<(VersionId, Vec<usize>)>> = FxHashMap::default();
        let mut touched: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        for &v in versions {
            for &(pk, origin) in &st.contents[v.index()] {
                let ck = CompositeKey::new(pk, origin);
                let &(chunk, local) = st
                    .locator
                    .get(&ck)
                    .unwrap_or_else(|| panic!("record {ck} not placed"));
                touched.entry(chunk).or_default().push(local as usize);
                // Key projection: every placed record's key points at
                // its chunk.
                projections.add_key_chunk(pk, ChunkId(chunk));
            }
            for (chunk, mut locals) in touched.drain() {
                locals.sort_unstable();
                projections.add_version_chunk(v, ChunkId(chunk));
                per_chunk.entry(chunk).or_default().push((v, locals));
            }
            projections.ensure_version(v);
        }

        // Pass 2 — independent chunk-map builds: each dirty map (a
        // disjoint `&mut`) applies its work list and re-encodes on
        // its own core. Every in-memory mutation completes *before*
        // any write is attempted, so a failed write leaves the
        // resident maps whole and the next successful flush rewrites
        // them completely (the pre-pipeline self-healing behaviour).
        let jobs: Vec<MapBuildJob<'_>> = st
            .chunk_maps
            .iter_mut()
            .enumerate()
            .filter_map(|(c, map)| {
                per_chunk.remove(&(c as u32)).map(|work| (c as u32, map, work))
            })
            .collect();
        let dirty: Vec<u32> = jobs.iter().map(|&(c, _, _)| c).collect();
        let writes: Vec<(Key, Bytes)> =
            plan::parallel_map_owned(jobs, workers, |(c, map, work)| {
                for (v, locals) in work {
                    map.push_version(v, locals.iter().copied());
                }
                (
                    table_key(CMAP_TABLE, &ChunkId(c).to_key()),
                    Bytes::from(map.serialize()),
                )
            });
        // The serialized maps ride the same streaming writer stage as
        // the chunk blobs (per-node batches ship while later pushes
        // queue; one deferred scatter put on the serial path).
        let outcome = stream_writes(&self.cluster, workers, writes)?;
        // Stamp the rewritten maps with the generation about to
        // publish: cached decoded copies of older generations fail
        // the probe floor and drop lazily — no synchronous
        // invalidation loop in this critical section (the flush tail
        // sweeps resident stale entries outside it).
        let mg = Arc::make_mut(&mut st.map_gen);
        for &c in &dirty {
            mg[c as usize] = st.generation + 1;
        }
        Ok((dirty, outcome))
    }

    /// Persists the projections, version graph, chunk count and the
    /// retired-chunk list — one batched scatter-gather put instead of
    /// serial round trips. For a compaction this put is the *commit
    /// point*: until it lands, the persisted metadata references only
    /// the old generation, which is still fully present. Returns
    /// `(modeled write time, wall time blocked on the put)` for the
    /// stage accounting; serialization happens before the clock starts
    /// so only backend time counts as write-blocked.
    pub(crate) fn persist_meta_locked(
        &self,
        st: &StoreMut,
    ) -> Result<(Duration, Duration), CoreError> {
        let encode_ids = |ids: &FxHashSet<u32>| {
            let mut sorted: Vec<u32> = ids.iter().copied().collect();
            sorted.sort_unstable();
            let mut bytes = Vec::with_capacity(4 + sorted.len() * 2);
            varint::write_u64(&mut bytes, sorted.len() as u64);
            for c in sorted {
                varint::write_u32(&mut bytes, c);
            }
            bytes
        };
        let retired_bytes = encode_ids(&st.retired);
        let free_bytes = encode_ids(&st.free);
        let pairs = vec![
            (
                table_key(META_TABLE, b"projections"),
                Bytes::from(st.projections.serialize()),
            ),
            (
                table_key(META_TABLE, b"graph"),
                Bytes::from(st.graph.to_bytes()),
            ),
            (
                table_key(META_TABLE, b"chunk_count"),
                Bytes::from((st.chunk_maps.len() as u64).to_be_bytes().to_vec()),
            ),
            (table_key(META_TABLE, b"retired"), Bytes::from(retired_bytes)),
            (table_key(META_TABLE, b"free"), Bytes::from(free_bytes)),
        ];
        let t = Instant::now();
        let modeled = self.cluster.multi_put_scatter(pairs)?;
        Ok((modeled, t.elapsed()))
    }

    /// Reopens a store over a cluster that already holds RStore data
    /// (e.g. a restarted log-engine cluster): reads the persisted
    /// version graph, projections and chunk count, then rebuilds the
    /// in-memory locator, chunk maps and per-version contents from
    /// the stored chunks. Pending (unsealed) deltas are not replayed.
    pub fn reopen(config: StoreConfig, cluster: Cluster) -> Result<Self, CoreError> {
        let graph_bytes = cluster
            .get(&table_key(META_TABLE, b"graph"))?
            .ok_or_else(|| CoreError::Codec("no persisted graph".into()))?;
        let graph = VersionGraph::from_bytes(&graph_bytes).map_err(CoreError::Codec)?;
        let proj_bytes = cluster
            .get(&table_key(META_TABLE, b"projections"))?
            .ok_or_else(|| CoreError::Codec("no persisted projections".into()))?;
        let projections = Projections::deserialize(&proj_bytes)?;
        let count_bytes = cluster
            .get(&table_key(META_TABLE, b"chunk_count"))?
            .ok_or_else(|| CoreError::Codec("no persisted chunk count".into()))?;
        let chunk_count = u64::from_be_bytes(
            count_bytes
                .as_ref()
                .try_into()
                .map_err(|_| CoreError::Codec("bad chunk count".into()))?,
        ) as usize;
        // The retired-chunk list (absent on stores persisted before
        // compaction existed — treated as empty).
        let mut retired: FxHashSet<u32> = FxHashSet::default();
        if let Some(bytes) = cluster.get(&table_key(META_TABLE, b"retired"))? {
            let mut r = varint::VarintReader::new(&bytes);
            let n = r.read_u64()? as usize;
            if n > bytes.len() {
                return Err(CoreError::Codec("retired count exceeds input".into()));
            }
            for _ in 0..n {
                retired.insert(r.read_u32()?);
            }
            if !r.is_empty() {
                return Err(CoreError::Codec("trailing bytes in retired list".into()));
            }
        }
        // The reclaimed free-slot list (absent on stores persisted
        // before snapshot reclamation existed — treated as empty).
        let mut free: FxHashSet<u32> = FxHashSet::default();
        if let Some(bytes) = cluster.get(&table_key(META_TABLE, b"free"))? {
            let mut r = varint::VarintReader::new(&bytes);
            let n = r.read_u64()? as usize;
            if n > bytes.len() {
                return Err(CoreError::Codec("free count exceeds input".into()));
            }
            for _ in 0..n {
                free.insert(r.read_u32()?);
            }
            if !r.is_empty() {
                return Err(CoreError::Codec("trailing bytes in free list".into()));
            }
        }

        if config.breaker.enabled {
            cluster.set_breaker(config.breaker);
        }
        let obs = Obs::new(config.obs);
        let serve = ServeCore::new(
            config.fetch_threads,
            cluster.node_count(),
            config.max_concurrent_queries,
            config.max_queued,
        );
        let cache = Arc::new(ChunkCache::new(config.cache_budget, config.cache_shards));
        if obs.enabled() {
            serve.set_obs(Arc::clone(obs.registry()));
            cache.set_obs(Arc::clone(obs.registry()));
        }
        let mut st = StoreMut::empty();
        st.graph = Arc::new(graph);
        st.projections = Arc::new(projections);
        st.retired = Arc::new(retired);
        st.free = Arc::new(free);
        st.chunk_maps = vec![ChunkMap::default(); chunk_count];
        st.chunk_sizes = Arc::new(vec![0; chunk_count]);
        // Not persisted: after a reopen every cached decoded map is
        // gone anyway, so generation 1 (the initial publish) is a
        // sound floor for every slot.
        st.map_gen = Arc::new(vec![1; chunk_count]);
        // Publish the initial generation *before* the recovery scan:
        // the scan runs through the ordinary pinned plan → fetch
        // pipeline, which needs a snapshot to pin.
        let current = Mutex::new(Arc::new(st.snapshot()));
        let store = RStore {
            serve,
            cluster: Arc::new(cluster),
            cache,
            obs,
            config,
            state: Mutex::new(st),
            current,
            pins: Arc::new(PinBoard::default()),
        };

        // Rebuild chunk-derived state with one scan over the *live*
        // chunks — a recovery plan executed through the scatter-gather
        // pipeline (which also warms the cache when one is
        // configured). Retired ids keep empty tombstone slots so ids
        // never shift.
        let live = store.snapshot().live_chunk_ids();
        let scan = store.plan_chunks(live.clone())?;
        let fetched = store.execute(scan)?;
        let mut guard = store.state.lock().unwrap();
        let st = &mut *guard;
        let mut contents_maps: Vec<FxHashMap<PrimaryKey, VersionId>> =
            vec![FxHashMap::default(); st.graph.len()];
        for (&c, dc) in live.iter().zip(fetched.into_chunks()) {
            let keys = dc.local_keys();
            for (local, ck) in keys.iter().enumerate() {
                st.locator.insert(*ck, (c, local as u32));
            }
            for (v, bitmap) in dc.map.iter() {
                for local in bitmap.iter_ones() {
                    let ck = keys[local];
                    contents_maps[v.index()].insert(ck.pk, ck.origin);
                }
            }
            Arc::make_mut(&mut st.chunk_sizes)[c as usize] = dc.chunk.compressed_bytes();
            // Sole owner (cache disabled) moves the map out; a cached
            // copy keeps its Arc and the map is cloned.
            let map = match Arc::try_unwrap(dc) {
                Ok(owned) => owned.map,
                Err(shared) => shared.map.clone(),
            };
            st.chunk_maps[c as usize] = map;
        }
        st.contents = contents_maps
            .into_iter()
            .map(|m| {
                let mut list: Vec<(PrimaryKey, VersionId)> = m.into_iter().collect();
                list.sort_unstable();
                list
            })
            .collect();
        st.record_counts = Arc::new(st.contents.iter().map(|c| c.len()).collect());
        store.publish(st);
        drop(guard);
        Ok(store)
    }

    // ------------------------------------------------------------------
    // Online commits (§4)
    // ------------------------------------------------------------------

    /// Commits a new version; returns its id. The delta goes to the
    /// write buffer (delta store) and is partitioned when the batch
    /// fills ([`StoreConfig::batch_size`]) or on [`RStore::seal`].
    pub fn commit(&self, req: CommitRequest) -> Result<VersionId, CoreError> {
        let mut guard = self.state.lock().unwrap();
        let st = &mut *guard;
        // Resolve the request into a validated VersionDelta.
        let (v, delta, new_contents) = Self::resolve_commit(st, &req)?;
        // Durable delta store write (the paper's "separate storage
        // area" for received deltas).
        let mut delta_bytes = Vec::new();
        for rec in &delta.added {
            delta_bytes.extend_from_slice(&rec.composite_key().to_bytes());
            delta_bytes.extend_from_slice(&(rec.payload.len() as u64).to_le_bytes());
            delta_bytes.extend_from_slice(&rec.payload);
        }
        for ck in &delta.removed {
            delta_bytes.extend_from_slice(&ck.to_bytes());
        }
        self.cluster.put(
            table_key(DELTA_TABLE, &v.as_u32().to_be_bytes()),
            Bytes::from(delta_bytes),
        )?;

        Arc::make_mut(&mut st.record_counts).push(new_contents.len());
        st.contents.push(new_contents);
        st.pending.push((v, delta));
        if st.pending.len() >= self.config.batch_size {
            // The flush publishes at its own tail; if it fails, still
            // publish so readers see the durably committed version
            // (the flush's in-memory state self-heals on the next
            // successful flush, exactly as before).
            let flushed = self.flush_locked(st);
            if flushed.is_err() {
                self.publish(st);
            }
            flushed?;
        } else {
            self.publish(st);
        }
        Ok(v)
    }

    fn resolve_commit(
        st: &mut StoreMut,
        req: &CommitRequest,
    ) -> Result<ResolvedCommit, CoreError> {
        // Validate everything before mutating the graph, so a failed
        // commit leaves the store untouched.
        if req.is_root {
            if !st.graph.is_empty() {
                return Err(CoreError::BadCommit(
                    "root commit on a non-empty store".into(),
                ));
            }
        } else {
            if req.parents.is_empty() {
                return Err(CoreError::BadCommit("commit without parent".into()));
            }
            for &p in &req.parents {
                if !st.graph.contains(p) {
                    return Err(CoreError::UnknownVersion(p.as_u32()));
                }
            }
        }
        let v = VersionId(st.graph.len() as u32);

        let parent_contents: &[(PrimaryKey, VersionId)] = if req.is_root {
            &[]
        } else {
            &st.contents[req.parents[0].index()]
        };
        let lookup = |pk: PrimaryKey| -> Option<VersionId> {
            parent_contents
                .binary_search_by_key(&pk, |&(k, _)| k)
                .ok()
                .map(|i| parent_contents[i].1)
        };

        let mut added = Vec::with_capacity(req.puts.len());
        let mut removed = Vec::with_capacity(req.puts.len() + req.deletes.len());
        let mut seen: FxHashMap<PrimaryKey, ()> = FxHashMap::default();
        for (pk, payload) in &req.puts {
            if seen.insert(*pk, ()).is_some() {
                return Err(CoreError::BadCommit(format!("K{pk} written twice")));
            }
            if let Some(origin) = lookup(*pk) {
                removed.push(CompositeKey::new(*pk, origin));
            }
            added.push(Record::new(*pk, v, payload.clone()));
        }
        for pk in &req.deletes {
            if seen.insert(*pk, ()).is_some() {
                return Err(CoreError::BadCommit(format!("K{pk} written and deleted")));
            }
            match lookup(*pk) {
                Some(origin) => removed.push(CompositeKey::new(*pk, origin)),
                None => {
                    return Err(CoreError::BadCommit(format!(
                        "K{pk} deleted but absent from parent"
                    )))
                }
            }
        }
        let delta = VersionDelta::from_parts(added, removed);
        delta
            .validate(v)
            .map_err(|e| CoreError::BadCommit(e.to_string()))?;

        // New contents = parent ± delta, kept sorted by pk.
        let mut map: FxHashMap<PrimaryKey, VersionId> =
            parent_contents.iter().copied().collect();
        for ck in &delta.removed {
            map.remove(&ck.pk);
        }
        for rec in &delta.added {
            map.insert(rec.pk, v);
        }
        let mut contents: Vec<(PrimaryKey, VersionId)> = map.into_iter().collect();
        contents.sort_unstable();

        // All checks passed: record the version in the graph.
        let graph = Arc::make_mut(&mut st.graph);
        let assigned = if req.is_root {
            graph.add_root()
        } else {
            graph.add_version(&req.parents)
        };
        debug_assert_eq!(assigned, v);
        Ok((v, delta, contents))
    }

    /// Number of commits waiting in the delta store.
    pub fn pending_commits(&self) -> usize {
        self.state.lock().unwrap().pending.len()
    }

    /// Flushes the delta store: partitions the batch's new records
    /// into fresh chunks (never re-partitioning placed records, §4),
    /// updates chunk maps and projections, and persists everything —
    /// through the same parallel, pipelined stages as
    /// [`RStore::load_dataset`].
    pub fn flush_batch(&self) -> Result<FlushReport, CoreError> {
        let mut guard = self.state.lock().unwrap();
        self.flush_locked(&mut guard)
    }

    /// [`RStore::flush_batch`] body, on an already-held state lock
    /// (so `commit` → flush and flush → auto-compact never re-enter
    /// the mutex). Readers keep serving the pre-flush snapshot until
    /// the publish at the tail.
    fn flush_locked(&self, st: &mut StoreMut) -> Result<FlushReport, CoreError> {
        if st.pending.is_empty() {
            return Ok(FlushReport::default());
        }
        let flush_t0 = Instant::now();
        let workers = self.ingest_workers();
        let mut stages = IngestStages {
            workers,
            ..IngestStages::default()
        };
        let batch = std::mem::take(&mut st.pending);
        let versions: Vec<VersionId> = batch.iter().map(|&(v, _)| v).collect();

        // Gather the batch's new records and give them batch-local
        // item ordinals.
        let mut batch_ord: FxHashMap<CompositeKey, u32> = FxHashMap::default();
        let mut records: Vec<&Record> = Vec::new();
        for (_, delta) in &batch {
            for rec in &delta.added {
                batch_ord.insert(rec.composite_key(), records.len() as u32);
                records.push(rec);
            }
        }
        let new_records = records.len();

        let mut new_chunks = 0usize;
        if new_records > 0 {
            // Stage 1 — sub-chunk: build singleton sub-chunks across
            // cores (online compression applies within the record
            // itself; cross-record grouping happens on periodic full
            // repartitions, which the paper leaves as future work).
            let t = Instant::now();
            let built: Vec<SubChunk> = plan::parallel_map(&records, workers, |r| {
                SubChunk::build(&[(r.composite_key(), r.payload.as_ref())])
            });
            stages.subchunk = t.elapsed();
            let item_sizes: Vec<u32> = built.iter().map(|s| s.compressed_bytes() as u32).collect();
            let item_pk: Vec<u64> = records.iter().map(|r| r.pk).collect();

            // Stage 2 — partition. version_items over the full tree:
            // new records appear only in batch versions.
            let mut version_items: Vec<Vec<u32>> = vec![Vec::new(); st.graph.len()];
            for &v in &versions {
                let mut items: Vec<u32> = st.contents[v.index()]
                    .iter()
                    .filter_map(|&(pk, origin)| {
                        batch_ord.get(&CompositeKey::new(pk, origin)).copied()
                    })
                    .collect();
                items.sort_unstable();
                version_items[v.index()] = items;
            }
            let tree = st.graph.to_tree();
            let input = PartitionInput {
                tree: &tree,
                version_items: &version_items,
                item_sizes: &item_sizes,
                item_pk: &item_pk,
            };
            let partitioner = self.config.partitioner.build(self.config.chunk_capacity);
            let t = Instant::now();
            let partitioning = partitioner.partition(&input);
            stages.partition = t.elapsed();

            // Stage 3 — assemble the new chunks into freshly
            // allocated id slots (reclaimed free slots first, then
            // fresh ids) and stream them out while later ones encode.
            let t = Instant::now();
            let ids = claim_chunk_ids(st, partitioning.num_chunks);
            let mut subchunk_slots: Vec<Option<SubChunk>> = built.into_iter().map(Some).collect();
            let mut chunks: Vec<Chunk> = Vec::with_capacity(partitioning.num_chunks);
            for (ci, items) in partitioning.chunk_items().iter().enumerate() {
                let chunk_id = ChunkId(ids[ci]);
                let mut chunk = Chunk::new();
                for (local, &item) in items.iter().enumerate() {
                    let sc = subchunk_slots[item as usize].take().expect("one chunk");
                    st.locator.insert(
                        records[item as usize].composite_key(),
                        (chunk_id.0, local as u32),
                    );
                    chunk.subchunks.push(sc);
                }
                let slot = ids[ci] as usize;
                Arc::make_mut(&mut st.chunk_sizes)[slot] = chunk.compressed_bytes();
                Arc::make_mut(&mut st.map_gen)[slot] = st.generation + 1;
                st.chunk_maps[slot] = ChunkMap::new(items.len());
                chunks.push(chunk);
            }
            new_chunks = partitioning.num_chunks;
            let jobs: Vec<(u32, Chunk)> = chunks
                .into_iter()
                .zip(ids.iter())
                .map(|(c, &id)| (id, c))
                .collect();
            let outcome = stream_chunk_blobs(&self.cluster, workers, jobs)?;
            stages.assemble = t.elapsed();
            outcome.fold_into(&mut stages);
        }

        // Stages 4+5 — index the batch versions (updates old and new
        // chunk maps, each persisted once through the writer stage).
        let t = Instant::now();
        let (dirty, index_outcome) = self.index_versions_locked(st, &versions)?;
        let maps_rewritten = dirty.len();
        stages.index = t.elapsed();
        index_outcome.fold_into(&mut stages);
        let (meta_modeled, meta_wait) = self.persist_meta_locked(st)?;
        stages.modeled_write += meta_modeled;
        stages.write += meta_wait;
        self.publish(st);
        // Sweep resident cache entries of the rewritten maps *after*
        // the publish: entries stamped below the new generation are
        // stale (their decoded map predates the rewrite) and safe to
        // drop unconditionally — backend chunk maps only grow, so a
        // reader still pinning the old generation refetches a
        // superset and extracts identical answers.
        for &c in &dirty {
            self.cache.invalidate_below(c, st.generation);
        }
        // Piggyback any deferred reclamation whose old pins drained.
        self.drain_deferred(st);
        self.record_ingest_stages(&stages);
        if self.obs.enabled() {
            let r = self.obs.registry();
            r.flushes.inc();
            // Flush end-to-end, excluding any auto-compaction below
            // (that run records itself under `rstore_compact_*`).
            r.ingest_flush.record_duration(flush_t0.elapsed());
        }

        // Auto-compaction: after the configured number of flushes the
        // layout is measured, and if it decayed past the policy
        // thresholds the store repartitions in place (§4 leaves
        // periodic repartitioning as future work; this is it). The
        // flush itself is durable by now, so a failing *maintenance*
        // pass must not turn the successful commit into an error —
        // a compaction failure leaves both generations consistent
        // (see `compact.rs`) and is surfaced via
        // [`RStore::last_compaction_error`] (which `compact` records
        // itself) instead of propagating.
        st.flushes_since_compaction += 1;
        if self.config.compaction.auto_due(st.flushes_since_compaction) {
            let _ = self.compact_locked(st);
        }
        Ok(FlushReport {
            versions: versions.len(),
            new_records,
            new_chunks,
            maps_rewritten,
            stages,
        })
    }

    /// Flushes any pending commits (call before querying fresh data)
    /// and returns the final batch's [`FlushReport`], so callers can
    /// see the last ingest's stage breakdown instead of losing it.
    ///
    /// Sealing is also a durability barrier: every node syncs its
    /// engine (group-commit under a relaxed
    /// [`SyncPolicy`](rstore_kvstore::SyncPolicy)), and any hinted
    /// writes that missed a replica during an outage are replayed so
    /// the sealed data is fully replicated again.
    pub fn seal(&self) -> Result<FlushReport, CoreError> {
        let report = self.flush_batch()?;
        self.cluster.sync_all()?;
        self.cluster.replay_hints()?;
        Ok(report)
    }

    /// Drains every deferred-reclamation batch whose retiring
    /// generation is no longer protected by an older pin: the
    /// victims' cache entries drop and their backend keys delete —
    /// off a mutator's (or explicit reclaim pass's) thread, never a
    /// reader's. Returns `(batches drained, keys deleted)`.
    pub(crate) fn drain_deferred(&self, st: &mut StoreMut) -> (usize, usize) {
        if st.deferred.is_empty() {
            return (0, 0);
        }
        let oldest = self.pins.oldest();
        let mut drained = 0usize;
        let mut keys_deleted = 0usize;
        let mut keep = Vec::new();
        for d in st.deferred.drain(..) {
            if oldest.is_some_and(|o| o < d.publish_gen) {
                keep.push(d);
                continue;
            }
            let DeferredReclaim { chunk_ids, keys, .. } = d;
            for c in chunk_ids {
                self.cache.invalidate(c);
            }
            if !keys.is_empty() {
                keys_deleted += keys.len();
                // Best-effort: a failed delete leaves orphan blobs no
                // metadata references — harmless, like a crash
                // between the meta commit point and the cleanup.
                let _ = self.cluster.multi_delete_scatter(keys);
            }
            drained += 1;
        }
        st.deferred = keep;
        (drained, keys_deleted)
    }

    /// Explicit reclamation pass — Phase B of the retire protocol.
    /// Drains eligible deferred deletions, moves unblocked retired
    /// ids to the reusable free list, and truncates trailing free
    /// slots outright, so `chunk_maps` tombstones do not accumulate
    /// without bound across thousands of compactions. Persists and
    /// publishes when anything changed.
    pub fn reclaim(&self) -> Result<ReclaimReport, CoreError> {
        let mut guard = self.state.lock().unwrap();
        let st = &mut *guard;
        let (deferred_drained, keys_deleted) = self.drain_deferred(st);
        // A retired id still referenced by a deferred batch keeps its
        // tombstone: freeing it for reuse before its old keys are
        // deleted could let a pinned reader fetch a mix of old and
        // new blobs under one id.
        let blocked: FxHashSet<u32> = st
            .deferred
            .iter()
            .flat_map(|d| d.chunk_ids.iter().copied())
            .collect();
        let movable: Vec<u32> = st
            .retired
            .iter()
            .copied()
            .filter(|c| !blocked.contains(c))
            .collect();
        let slots_reclaimed = movable.len();
        if !movable.is_empty() {
            let retired = Arc::make_mut(&mut st.retired);
            let free = Arc::make_mut(&mut st.free);
            for c in movable {
                retired.remove(&c);
                free.insert(c);
            }
        }
        // Trailing freed slots shrink the id space outright instead
        // of waiting as reusable tombstones.
        let mut slots_truncated = 0usize;
        while let Some(last) = st.chunk_maps.len().checked_sub(1) {
            if !st.free.contains(&(last as u32)) {
                break;
            }
            Arc::make_mut(&mut st.free).remove(&(last as u32));
            st.chunk_maps.pop();
            Arc::make_mut(&mut st.chunk_sizes).pop();
            Arc::make_mut(&mut st.map_gen).pop();
            slots_truncated += 1;
        }
        if deferred_drained > 0 || slots_reclaimed > 0 || slots_truncated > 0 {
            self.persist_meta_locked(st)?;
            self.publish(st);
        }
        if self.obs.enabled() {
            let n = (slots_reclaimed + slots_truncated) as u64;
            self.obs.registry().reclaimed_chunk_slots_total.add(n);
        }
        Ok(ReclaimReport {
            deferred_drained,
            keys_deleted,
            slots_reclaimed,
            slots_truncated,
        })
    }

    // ------------------------------------------------------------------
    // Queries (§2.1 / §2.4): plan → fetch → extract
    // ------------------------------------------------------------------

    /// Validates the spec's version reference against the pinned
    /// snapshot before planning.
    fn check_spec(snap: &StoreSnapshot, spec: &QuerySpec) -> Result<(), CoreError> {
        match *spec {
            QuerySpec::Version(v)
            | QuerySpec::Record { v, .. }
            | QuerySpec::Range { v, .. } => {
                if snap.graph.contains(v) {
                    Ok(())
                } else {
                    Err(CoreError::UnknownVersion(v.as_u32()))
                }
            }
            QuerySpec::Evolution { .. } | QuerySpec::Scan => Ok(()),
        }
    }

    /// Stage 1 — **plan**: pin the current snapshot, consult its
    /// projections once for the query's span (index-ANDing for record
    /// retrieval, §2.4), probe the decoded-chunk cache, and group the
    /// missing backend keys by owning node. No backend round trip
    /// happens here. The pin rides inside the returned plan, so the
    /// whole plan → fetch → extract pipeline observes exactly one
    /// generation even while mutators publish newer ones.
    pub fn plan_query(&self, spec: QuerySpec) -> Result<QueryPlan, CoreError> {
        let pin = self.pin();
        Self::check_spec(&pin, &spec)?;
        // A full scan plans over the *live* ids (compaction-retired
        // ids have no backend keys); the projections never reference
        // retired chunks, so every other spec is safe already.
        let chunk_ids = pin
            .projections
            .chunks_for(&spec, || pin.live_chunk_ids());
        plan::build_plan(
            &self.cluster,
            &self.cache,
            self.config.read_routing,
            spec,
            chunk_ids,
            pin,
        )
    }

    /// Plans a fetch of explicit chunk ids — the recovery scan, where
    /// the in-memory chunk maps are not rebuilt yet so the projections
    /// cannot be consulted.
    pub fn plan_chunks(&self, chunk_ids: Vec<u32>) -> Result<QueryPlan, CoreError> {
        plan::build_plan(
            &self.cluster,
            &self.cache,
            self.config.read_routing,
            QuerySpec::Scan,
            chunk_ids,
            self.pin(),
        )
    }

    /// Stage 2 — **fetch**: scatter-gather through the serving core.
    /// The query first passes admission control (waiting in the FIFO
    /// queue when the in-flight budget is full, shed with
    /// [`CoreError::Overloaded`] once the queue is full too), then
    /// its node batches run as jobs on the store's shared fetch pool:
    /// a chunk is decoded by whichever pool worker delivers its
    /// second half, overlapping decode with the other batches'
    /// transfers, and decoded pairs are admitted to the cache. Time
    /// queued is reported in
    /// [`QueryStats::queue_wait`](crate::query::QueryStats::queue_wait).
    pub fn execute(&self, plan: QueryPlan) -> Result<ExecutedQuery, CoreError> {
        self.execute_with_deadline(plan, self.config.default_deadline)
    }

    /// [`RStore::execute`] with an explicit per-query time budget
    /// (overriding [`StoreConfig::default_deadline`]; `None` removes
    /// it). The budget covers admission queueing plus the accrued
    /// modeled fetch time — max-over-nodes per round in *every*
    /// executor mode, so the trip point is mode-independent — and a
    /// query that runs out fails with
    /// [`CoreError::DeadlineExceeded`] carrying the stats of the work
    /// it did complete.
    pub fn execute_with_deadline(
        &self,
        plan: QueryPlan,
        deadline: Option<Duration>,
    ) -> Result<ExecutedQuery, CoreError> {
        self.execute_traced(plan, deadline, None)
    }

    /// The pooled execution path with an optional trace sink:
    /// admission, then the scatter-gather rounds under the store's
    /// tail-defense policy, with the registry and sink threaded into
    /// the executor. [`RStore::query_with_stats`] passes the sink of
    /// sampled queries; every other caller passes `None`.
    fn execute_traced(
        &self,
        plan: QueryPlan,
        deadline: Option<Duration>,
        trace: Option<&Arc<TraceSink>>,
    ) -> Result<ExecutedQuery, CoreError> {
        let admit_t = Instant::now();
        let guard = self.serve.admit_within(plan.span(), deadline)?;
        let waited = guard.waited();
        if let Some(t) = trace {
            t.add("admission".into(), TID_QUERY, admit_t);
        }
        let policy = ExecPolicy {
            hedge: self.config.hedge,
            // The fetch rounds get whatever the queue left over.
            deadline: deadline.map(|d| d.saturating_sub(waited)),
            obs: self
                .obs
                .enabled()
                .then(|| Arc::clone(self.obs.registry())),
            trace: trace.cloned(),
        };
        match plan::execute_plan_with(
            &self.cluster,
            &self.cache,
            plan,
            ExecMode::Pool(self.serve.pool()),
            policy,
        ) {
            Ok(mut executed) => {
                executed.metrics.queue_wait = waited;
                Ok(executed)
            }
            // Re-frame the executor's leftover-budget error in terms
            // of the caller's full deadline, and fold the queue wait
            // back into both the spent total and the partial stats.
            Err(CoreError::DeadlineExceeded {
                spent, mut partial, ..
            }) => {
                partial.queue_wait = waited;
                Err(CoreError::DeadlineExceeded {
                    budget: deadline.unwrap_or(spent),
                    spent: spent + waited,
                    partial,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// The retired per-query scatter-gather executor: one scoped
    /// thread per node (sub-)batch, spawned and joined by this query
    /// alone, bypassing admission control and the shared pool. Kept
    /// as the spawn-per-query baseline `bench_throughput` measures
    /// the serving core against; results are identical to
    /// [`RStore::execute`].
    pub fn execute_spawn(&self, plan: QueryPlan) -> Result<ExecutedQuery, CoreError> {
        plan::execute_plan(&self.cluster, &self.cache, plan, ExecMode::Spawn)
    }

    /// The serial reference executor: identical results to
    /// [`RStore::execute`], but node batches run one after another
    /// and modeled network time sums instead of taking the parallel
    /// max. This is the oracle the property tests compare against and
    /// the baseline `bench_pipeline` measures the speedup over.
    pub fn execute_serial(&self, plan: QueryPlan) -> Result<ExecutedQuery, CoreError> {
        plan::execute_plan(&self.cluster, &self.cache, plan, ExecMode::Serial)
    }

    /// Serving-core counters: fetch-pool size and jobs run, queries
    /// admitted/shed, peak in-flight and queue depths, and the total
    /// admission queue wait.
    pub fn serve_stats(&self) -> ServeStats {
        self.serve.stats()
    }

    /// The observability hub: registry, trace sampler, slow log.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The most recent sampled query trace (None until a query is
    /// sampled; sample every query with
    /// [`RStoreBuilder::trace_sample`]`(1.0)`).
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.obs.last_trace()
    }

    /// Oldest-first snapshot of the slow-query log: queries over the
    /// [`RStoreBuilder::slow_query_threshold`], shed by admission
    /// control, or deadline-tripped.
    pub fn slow_log(&self) -> Vec<SlowQuery> {
        self.obs.slow_log()
    }

    /// Renders every metric — the push-based registry plus gauges
    /// pulled from the cluster, serving-core, cache, fragmentation
    /// and per-node health surfaces — in Prometheus text exposition
    /// format.
    pub fn metrics_text(&self) -> String {
        let mut out = String::with_capacity(16 * 1024);
        self.obs.registry().render(&mut out);

        // Pull-based gauges: point-in-time views of the pre-PR 9
        // snapshot surfaces, named into the same convention.
        let snap = self.cluster.stats();
        obs::render_counter(&mut out, "rstore_cluster_requests_total", "Backend requests", snap.requests);
        obs::render_counter(&mut out, "rstore_cluster_bytes_read_total", "Backend bytes read", snap.bytes_read);
        obs::render_counter(&mut out, "rstore_cluster_bytes_written_total", "Backend bytes written", snap.bytes_written);
        obs::render_counter(&mut out, "rstore_cluster_retries_total", "Cluster-layer in-place retries", snap.retries);
        obs::render_counter(&mut out, "rstore_cluster_faults_injected_total", "Injected faults", snap.faults_injected);
        obs::render_counter(&mut out, "rstore_cluster_hints_recorded_total", "Handoff hints recorded", snap.hints_recorded);
        obs::render_counter(&mut out, "rstore_cluster_hints_replayed_total", "Handoff hints replayed", snap.hints_replayed);
        obs::render_gauge(&mut out, "rstore_cluster_under_replicated_keys", "Keys currently under-replicated", "", snap.under_replicated as f64);

        let serve = self.serve.stats();
        obs::render_gauge(&mut out, "rstore_serve_pool_workers", "Fetch-pool workers started", "", serve.pool_size as f64);
        obs::render_counter(&mut out, "rstore_serve_jobs_total", "Fetch-pool jobs run", serve.jobs_run);
        obs::render_counter(&mut out, "rstore_serve_admitted_total", "Queries admitted", serve.admitted);
        obs::render_counter(&mut out, "rstore_serve_shed_total", "Queries shed at admission", serve.shed);
        obs::render_gauge(&mut out, "rstore_serve_peak_in_flight", "Peak concurrent queries", "", serve.peak_in_flight as f64);
        obs::render_gauge(&mut out, "rstore_serve_peak_queued", "Peak admission queue depth", "", serve.peak_queued as f64);

        let cache = self.cache_stats();
        obs::render_gauge(&mut out, "rstore_cache_resident_bytes", "Decoded-chunk cache resident bytes", "", cache.resident_bytes as f64);
        obs::render_gauge(&mut out, "rstore_cache_resident_chunks", "Decoded-chunk cache resident chunks", "", cache.resident_chunks as f64);

        let frag = self.fragmentation_stats();
        obs::render_gauge(&mut out, "rstore_store_versions", "Versions in the graph", "", self.version_count() as f64);
        obs::render_gauge(&mut out, "rstore_store_live_chunks", "Live chunks", "", frag.live_chunks as f64);
        obs::render_gauge(&mut out, "rstore_store_retired_chunks", "Chunks retired by compaction", "", frag.retired_chunks as f64);
        obs::render_gauge(&mut out, "rstore_store_mean_chunk_fill", "Mean live-chunk fill fraction", "", frag.mean_fill);
        obs::render_gauge(&mut out, "rstore_store_mean_version_span", "Mean per-version chunk span", "", frag.mean_version_span);
        obs::render_gauge(&mut out, "rstore_store_read_amplification", "Estimated read amplification", "", frag.est_read_amplification);
        obs::render_gauge(&mut out, "rstore_store_storage_bytes", "Stored compressed chunk bytes", "", self.storage_bytes() as f64);
        obs::render_gauge(&mut out, "rstore_store_generation", "Published snapshot generation", "", self.generation() as f64);
        obs::render_gauge(&mut out, "rstore_store_pinned_readers", "Readers holding snapshot pins", "", self.pinned_readers() as f64);
        obs::render_gauge(&mut out, "rstore_store_reclaim_backlog", "Deferred reclamation batches awaiting old pins", "", self.reclaim_backlog() as f64);

        // Per-node gauges + modeled service-time histograms off the
        // health scoreboard (the distribution behind the hedge EWMA).
        let health = self.cluster.node_health();
        let loads = self.cluster.per_node_stats();
        out.push_str("# HELP rstore_node_service_ewma_seconds Per-key modeled service-time EWMA\n# TYPE rstore_node_service_ewma_seconds gauge\n");
        for h in &health {
            out.push_str(&format!(
                "rstore_node_service_ewma_seconds{{node=\"{}\"}} {}\n",
                h.node,
                h.ewma_service.as_secs_f64()
            ));
        }
        out.push_str("# HELP rstore_node_error_rate Batch-failure EWMA per node\n# TYPE rstore_node_error_rate gauge\n");
        for h in &health {
            out.push_str(&format!(
                "rstore_node_error_rate{{node=\"{}\"}} {}\n",
                h.node, h.error_rate
            ));
        }
        out.push_str("# HELP rstore_node_batches_total Scored successful batches per node\n# TYPE rstore_node_batches_total counter\n");
        for h in &health {
            out.push_str(&format!(
                "rstore_node_batches_total{{node=\"{}\"}} {}\n",
                h.node, h.batches
            ));
        }
        out.push_str("# HELP rstore_node_keys_served_total Keys served per node\n# TYPE rstore_node_keys_served_total counter\n");
        for l in &loads {
            out.push_str(&format!(
                "rstore_node_keys_served_total{{node=\"{}\"}} {}\n",
                l.node, l.keys_served
            ));
        }
        let node_hists: Vec<(String, rstore_kvstore::HistSnapshot)> = self
            .cluster
            .node_service_histograms()
            .into_iter()
            .enumerate()
            .map(|(node, snap)| (format!("{{node=\"{node}\"}}"), snap))
            .collect();
        obs::render_hist_family(
            &mut out,
            "rstore_node_service_seconds",
            "Modeled batch service time per node",
            &node_hists,
        );
        out
    }

    /// One unified point-in-time snapshot across every subsystem —
    /// the struct behind `rstore-cli stats --json`.
    pub fn stats_snapshot(&self) -> obs::StoreStats {
        let r = self.obs.registry();
        obs::StoreStats {
            versions: self.version_count(),
            storage_bytes: self.storage_bytes(),
            generation: self.generation(),
            pinned_readers: self.pinned_readers(),
            reclaim_backlog: self.reclaim_backlog(),
            fragmentation: self.fragmentation_stats(),
            cache: self.cache_stats(),
            serve: self.serve.stats(),
            backend: self.cluster.stats(),
            query_wall: obs::HistSummary::of(&r.query_wall.snapshot()),
            query_modeled: obs::HistSummary::of(&r.query_modeled.snapshot()),
            queue_wait: obs::HistSummary::of(&r.queue_wait.snapshot()),
            round_wall: obs::HistSummary::of(&r.round_wall.snapshot()),
            queries: r.queries.get(),
            shed: r.shed.get(),
            deadline_exceeded: r.deadline_exceeded.get(),
            slow_queries: r.slow_queries.get(),
            hedges: r.hedges.get(),
            hedge_wins: r.hedge_wins.get(),
            retries: r.retries.get(),
            failovers: r.failovers.get(),
            flushes: r.flushes.get(),
            compactions: r.compactions.get(),
        }
    }

    /// Stage 3 — **extract**, streaming: the full pipeline, returning
    /// a [`RecordStream`] that decompresses each chunk only when the
    /// consumer reaches it.
    pub fn stream_query(&self, spec: QuerySpec) -> Result<RecordStream, CoreError> {
        Ok(self.execute(self.plan_query(spec)?)?.into_stream())
    }

    /// Runs a query through the full pipeline and materializes it
    /// with cost accounting. Evolution results are ordered by origin
    /// version, everything else by primary key.
    pub fn query_with_stats(
        &self,
        spec: QuerySpec,
    ) -> Result<(Vec<Record>, QueryStats), CoreError> {
        let t0 = Instant::now();
        // Observability entry: sequence number + (for sampled
        // queries only) a trace sink. The unsampled path pays one
        // relaxed counter increment here.
        let (seq, trace) = self.obs.begin_query();
        let plan_span = obs::span_opt(&trace, TID_QUERY, || "plan".into());
        let plan = self.plan_query(spec)?;
        drop(plan_span);
        let chunks_fetched = plan.span();
        let generation = plan.generation();
        let mut stream = match self.execute_traced(plan, self.config.default_deadline, trace.as_ref())
        {
            Ok(executed) => executed.into_stream(),
            Err(e) => {
                // Shed and deadline-tripped queries still report in:
                // outcome counters plus a slow-log entry each.
                let (outcome, mut stats) = match &e {
                    CoreError::Overloaded => (QueryOutcome::Shed, QueryStats::default()),
                    CoreError::DeadlineExceeded { partial, .. } => {
                        (QueryOutcome::DeadlineExceeded, **partial)
                    }
                    _ => return Err(e),
                };
                stats.chunks_fetched = chunks_fetched;
                stats.elapsed = t0.elapsed();
                stats.generation = generation;
                self.obs
                    .finish_query(seq, &spec, &stats, trace.as_ref(), outcome);
                return Err(e);
            }
        };
        let extract_span = obs::span_opt(&trace, TID_QUERY, || "extract".into());
        let mut records = stream.drain()?;
        match spec {
            QuerySpec::Evolution { .. } => records.sort_unstable_by_key(|r| r.origin),
            _ => records.sort_unstable_by_key(|r| r.pk),
        }
        drop(extract_span);
        let fetch = stream.metrics();
        let stats = QueryStats {
            chunks_fetched,
            chunks_useful: stream.chunks_useful(),
            bytes_fetched: fetch.bytes_fetched,
            cache_hits: fetch.cache_hits,
            cache_misses: fetch.cache_misses,
            nodes_contacted: fetch.nodes_contacted,
            max_node_batch: fetch.max_node_batch,
            failovers: fetch.failovers,
            rerouted_keys: fetch.rerouted_keys,
            retries: fetch.retries,
            hedges: fetch.hedges,
            hedge_wins: fetch.hedge_wins,
            records: records.len(),
            elapsed: t0.elapsed(),
            modeled_network: fetch.modeled_network,
            queue_wait: fetch.queue_wait,
            generation,
        };
        self.obs
            .finish_query(seq, &spec, &stats, trace.as_ref(), QueryOutcome::Ok);
        Ok((records, stats))
    }

    /// Runs a query through the full pipeline, discarding the stats.
    pub fn query(&self, spec: QuerySpec) -> Result<Vec<Record>, CoreError> {
        self.query_with_stats(spec).map(|(r, _)| r)
    }

    /// Full version retrieval with cost accounting.
    pub fn get_version_with_stats(
        &self,
        v: VersionId,
    ) -> Result<(Vec<Record>, QueryStats), CoreError> {
        self.query_with_stats(QuerySpec::Version(v))
    }

    /// Full version retrieval.
    pub fn get_version(&self, v: VersionId) -> Result<Vec<Record>, CoreError> {
        self.query(QuerySpec::Version(v))
    }

    /// Record retrieval: the value of `pk` in version `v`.
    pub fn get_record_with_stats(
        &self,
        pk: PrimaryKey,
        v: VersionId,
    ) -> Result<(Option<Record>, QueryStats), CoreError> {
        let (mut records, stats) = self.query_with_stats(QuerySpec::Record { pk, v })?;
        Ok((records.pop(), stats))
    }

    /// Record retrieval.
    pub fn get_record(&self, pk: PrimaryKey, v: VersionId) -> Result<Option<Record>, CoreError> {
        self.get_record_with_stats(pk, v).map(|(r, _)| r)
    }

    /// Range retrieval: records of `v` with `lo ≤ pk ≤ hi`.
    pub fn get_range_with_stats(
        &self,
        lo: PrimaryKey,
        hi: PrimaryKey,
        v: VersionId,
    ) -> Result<(Vec<Record>, QueryStats), CoreError> {
        self.query_with_stats(QuerySpec::Range { lo, hi, v })
    }

    /// Range retrieval.
    pub fn get_range(
        &self,
        lo: PrimaryKey,
        hi: PrimaryKey,
        v: VersionId,
    ) -> Result<Vec<Record>, CoreError> {
        self.query(QuerySpec::Range { lo, hi, v })
    }

    /// Record evolution: every distinct value `pk` ever had, ordered
    /// by origin version.
    pub fn get_evolution_with_stats(
        &self,
        pk: PrimaryKey,
    ) -> Result<(Vec<Record>, QueryStats), CoreError> {
        self.query_with_stats(QuerySpec::Evolution { pk })
    }

    /// Record evolution.
    pub fn get_evolution(&self, pk: PrimaryKey) -> Result<Vec<Record>, CoreError> {
        self.query(QuerySpec::Evolution { pk })
    }
}
